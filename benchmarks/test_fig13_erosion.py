"""Figure 13: age-based data erosion under storage budgets.

(a) overall operator speed decays with video age; tighter budgets force
    more aggressive decay factors k;
(b) residual per-format stored size shrinks with age under a tight budget,
    while the golden format survives untouched.
"""

from repro.core.coalesce import StorageFormatPlanner
from repro.core.consumption import ConsumptionPlanner
from repro.core.erosion import ErosionPlanner
from repro.operators.library import Consumer
from repro.profiler.coding_profiler import CodingProfiler
from repro.profiler.profiler import OperatorProfiler
from repro.units import DAY, fmt_bytes

LIFESPAN = 10


def _planner(library):
    consumption = ConsumptionPlanner(OperatorProfiler(library, "dashcam"))
    decisions = consumption.derive_all(
        [Consumer(op, acc)
         for op in ("Motion", "License", "OCR")
         for acc in (0.95, 0.9, 0.8, 0.7)]
    )
    profiler = CodingProfiler(activity=0.6)
    plan = StorageFormatPlanner(profiler).heuristic_coalesce(decisions)
    rates = {sf.label: profiler.profile(sf.fmt).bytes_per_second
             for sf in plan.formats}
    return ErosionPlanner(plan.formats, rates, LIFESPAN)


def test_fig13a_speed_decay_per_budget(benchmark, record, full_library):
    planner = _planner(full_library)
    unbounded = planner.plan(None).total_bytes
    floor = planner.plan_for_k(16.0).total_bytes

    def sweep():
        plans = {}
        for fraction in (1.05, 0.6, 0.35, 0.15):
            budget = floor + fraction * (unbounded - floor)
            plans[fraction] = planner.plan(
                budget if fraction < 1.0 else None
            )
        return plans

    plans = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [f"{'budget':>8} {'k':>6} | " + " ".join(
        f"d{a:<4}" for a in range(1, LIFESPAN + 1))]
    for fraction, plan in plans.items():
        speeds = " ".join(f"{plan.overall_speed[a]:5.2f}"
                          for a in range(1, LIFESPAN + 1))
        lines.append(f"{fraction:>8} {plan.k:>6.2f} | {speeds}")
    record("Figure 13a — speed decay", "\n".join(lines))

    ks = [plan.k for plan in plans.values()]
    # Above the unbounded footprint: no decay.  Tighter budgets: higher k.
    assert ks[0] == 0.0
    assert ks == sorted(ks)
    assert ks[-1] > ks[1]
    for plan in plans.values():
        speeds = [plan.overall_speed[a] for a in range(1, LIFESPAN + 1)]
        assert speeds[0] == 1.0 or plan.k == 0.0
        assert all(b <= a + 1e-9 for a, b in zip(speeds, speeds[1:]))


def test_fig13b_residual_sizes(benchmark, record, full_library):
    planner = _planner(full_library)
    unbounded = planner.plan(None).total_bytes
    floor = planner.plan_for_k(16.0).total_bytes
    budget = floor + 0.3 * (unbounded - floor)

    plan = benchmark.pedantic(lambda: planner.plan(budget),
                              rounds=1, iterations=1)

    golden_label = next(sf.label for sf in planner.formats if sf.golden)
    lines = [f"{'age':>4} " + " ".join(f"{lab[:18]:>18}"
                                       for lab in plan.labels) + "   total"]
    for age in range(1, LIFESPAN + 1):
        cells = [plan.residual_bytes[(age, lab)] for lab in plan.labels]
        lines.append(f"{age:>4} "
                     + " ".join(f"{c / 2**30:>18.1f}" for c in cells)
                     + f" {sum(cells) / 2**30:>7.1f}")
    record("Figure 13b — residual GB by age (budgeted)", "\n".join(lines))

    assert plan.total_bytes <= budget
    for label in plan.labels:
        residuals = [plan.residual_bytes[(age, label)]
                     for age in range(1, LIFESPAN + 1)]
        if label == golden_label:
            # The golden format is never eroded.
            assert all(r == residuals[0] for r in residuals)
        else:
            # Other formats only shrink with age.
            assert all(b <= a + 1e-6 for a, b in zip(residuals, residuals[1:]))
    # Day-1 footage is intact for every format.
    for label in plan.labels:
        assert plan.fractions[(1, label)] == 0.0
