"""The vectorized profiling plane must be bit-identical to the scalar path.

Every ProfileTable cell is checked against the per-call scalar code it
replaces: exact float equality, not approx — the planner's plans (and the
paper tables derived from them) must not move by a ULP when the table is
switched on.
"""

import pytest

from repro.codec.model import DEFAULT_CODEC
from repro.codec.tables import clear_profile_table_cache, get_profile_table
from repro.errors import CodecError
from repro.profiler.coding_profiler import CodingProfiler
from repro.retrieval.speed import retrieval_speed
from repro.storage.disk import DEFAULT_DISK
from repro.video.coding import Coding, RAW, coding_space
from repro.video.fidelity import Fidelity, SAMPLING_RATES, fidelity_space
from repro.video.format import StorageFormat

ACTIVITY = 0.6


@pytest.fixture(scope="module")
def table():
    return get_profile_table(DEFAULT_CODEC, DEFAULT_DISK, ACTIVITY)


@pytest.fixture(scope="module")
def fidelity_sample():
    # Every 7th option covers all knob values in under a second of checks.
    return list(fidelity_space())[::7]


class TestGridParity:
    def test_encoded_profiles_match_scalar(self, table, fidelity_sample):
        for fid in fidelity_sample:
            for coding in coding_space(include_raw=False):
                fmt = StorageFormat(fid, coding)
                assert table.profile_values(fmt) == (
                    DEFAULT_CODEC.encoded_bytes_per_second(
                        fid, coding, ACTIVITY
                    ),
                    DEFAULT_CODEC.encode_seconds_per_video_second(
                        fid, coding
                    ),
                    retrieval_speed(fmt, None, DEFAULT_CODEC, DEFAULT_DISK),
                )

    def test_raw_profiles_match_scalar(self, table, fidelity_sample):
        for fid in fidelity_sample:
            fmt = StorageFormat(fid, RAW)
            assert table.profile_values(fmt) == (
                DEFAULT_CODEC.raw_bytes_per_second(fid),
                DEFAULT_CODEC.encode_seconds_per_video_second(fid, RAW),
                retrieval_speed(fmt, None, DEFAULT_CODEC, DEFAULT_DISK),
            )

    def test_retrieval_matches_scalar_per_sampling(
        self, table, fidelity_sample
    ):
        for fid in fidelity_sample[::5]:
            for coding in list(coding_space(include_raw=False))[::3] + [RAW]:
                fmt = StorageFormat(fid, coding)
                for sampling in SAMPLING_RATES:
                    try:
                        expected = retrieval_speed(
                            fmt, sampling, DEFAULT_CODEC, DEFAULT_DISK
                        )
                    except CodecError:
                        # Consumer faster than the store: the table returns
                        # None and the profiler falls back (and raises).
                        assert table.retrieval_speed(fmt, sampling) is None
                        continue
                    assert table.retrieval_speed(fmt, sampling) == expected

    def test_storage_rank_matches_scalar_sort(self, table, fidelity_sample):
        for fid in fidelity_sample[::10]:
            expected = sorted(
                coding_space(include_raw=False),
                key=lambda c: DEFAULT_CODEC.encoded_bytes_per_second(
                    fid, c, ACTIVITY
                ),
            )
            assert list(table.storage_rank(fid)) == expected


class TestTableCache:
    def test_tables_shared_per_key(self):
        a = get_profile_table(DEFAULT_CODEC, DEFAULT_DISK, 0.41)
        b = get_profile_table(DEFAULT_CODEC, DEFAULT_DISK, 0.41)
        assert a is b
        assert get_profile_table(DEFAULT_CODEC, DEFAULT_DISK, 0.42) is not a

    def test_profilers_share_one_table(self):
        p1 = CodingProfiler(activity=0.43)
        p2 = CodingProfiler(activity=0.43)
        assert p1.table is p2.table

    def test_clear_cache_rebuilds(self):
        a = get_profile_table(DEFAULT_CODEC, DEFAULT_DISK, 0.44)
        clear_profile_table_cache()
        assert get_profile_table(DEFAULT_CODEC, DEFAULT_DISK, 0.44) is not a


class TestProfilerModes:
    def test_profile_identical_with_and_without_table(self):
        scalar = CodingProfiler(activity=ACTIVITY, use_table=False)
        table = CodingProfiler(activity=ACTIVITY, use_table=True)
        for fid in list(fidelity_space())[::37]:
            for coding in [RAW] + list(coding_space(include_raw=False))[::7]:
                fmt = StorageFormat(fid, coding)
                a, b = scalar.profile(fmt), table.profile(fmt)
                assert a.bytes_per_second == b.bytes_per_second
                assert a.ingest_cost == b.ingest_cost
                assert a.base_retrieval_speed == b.base_retrieval_speed
        # Identical simulated profiling effort, too.
        assert scalar.stats.runs == table.stats.runs
        assert scalar.stats.seconds == table.stats.seconds

    def test_retrieval_speed_memoized_per_sampling(self):
        from fractions import Fraction

        prof = CodingProfiler(activity=0.4)
        fmt = StorageFormat(Fidelity.parse("best-540p-1-100%"),
                            Coding("fast", 10))
        first = prof.retrieval_speed(fmt, Fraction(1, 30))
        runs, hits = prof.stats.runs, prof.stats.memo_hits
        again = prof.retrieval_speed(fmt, Fraction(1, 30))
        assert again == first
        assert prof.stats.runs == runs  # no new profiling run
        assert prof.stats.memo_hits == hits + 1  # one memoized lookup
        # A different sampling rate is a different memo entry, not a rerun.
        prof.retrieval_speed(fmt, Fraction(1))
        assert prof.stats.runs == runs
