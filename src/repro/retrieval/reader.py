"""Segment reader: streams stored video through decoder (or disk) to
consumers, charging retrieval costs to the simulated clock.

This is the execution path behind queries: for each requested segment the
reader fetches the stored version, decodes it (encoded formats) or reads
sampled frames (raw formats), and reports the video time covered and the
simulated seconds spent — from which effective retrieval speed follows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.clock import SimClock
from repro.codec.chunks import decoded_frame_count
from repro.codec.model import CodecModel, DEFAULT_CODEC
from repro.errors import StorageError
from repro.storage.disk import DiskModel
from repro.storage.segment_store import SegmentStore, StoredSegment  # noqa: F401
from repro.video.fidelity import Fidelity
from repro.video.format import StorageFormat


@dataclass(frozen=True)
class RetrievedClip:
    """Outcome of retrieving one segment for one consumer."""

    stored: StoredSegment
    consumer_fidelity: Fidelity
    n_frames: int  # frames delivered to the consumer
    retrieval_seconds: float  # simulated time spent retrieving


class SegmentReader:
    """Reads segments of one storage format for one consumer fidelity."""

    def __init__(
        self,
        store: SegmentStore,
        fmt: StorageFormat,
        consumer_fidelity: Fidelity,
        codec: CodecModel = DEFAULT_CODEC,
        clock: Optional[SimClock] = None,
    ):
        if not fmt.fidelity.richer_equal(consumer_fidelity):
            raise StorageError(
                f"storage format {fmt.label} cannot supply fidelity "
                f"{consumer_fidelity.label} (requirement R1)"
            )
        self.store = store
        self.fmt = fmt
        self.consumer_fidelity = consumer_fidelity
        self.codec = codec
        self.clock = clock or SimClock()
        self.disk: DiskModel = store.disk

    @property
    def category(self) -> str:
        """Clock category this reader's retrievals charge to."""
        return "disk" if self.fmt.is_raw else "decode"

    def assess(self, stream: str, index: int) -> RetrievedClip:
        """Compute one segment's retrieval outcome without charging time.

        The concurrent executor plans retrieval tasks with this and charges
        the clock itself when the simulated disk/decoder actually serves
        them; :meth:`read` is ``assess`` plus an immediate charge.
        """
        stride = self.codec.consumer_stride(
            self.fmt.fidelity, self.consumer_fidelity.sampling
        )
        meta = self.store.meta(stream, self.fmt, index)
        if self.fmt.is_raw:
            # Raw path: sampled frames can be read individually from disk
            # (Table 3 note 2); a full scan streams the segment sequentially.
            n_stored = max(1, meta.n_frames)
            consumed = len(range(0, n_stored, stride))
            frame_bytes = self.codec.raw_frame_bytes(self.fmt.fidelity)
            # Either scan the whole segment sequentially or read sampled
            # frames individually, whichever is cheaper (cf. DiskModel).
            scan = (n_stored * frame_bytes / self.disk.read_bandwidth
                    + self.disk.request_overhead)
            sparse = (consumed * frame_bytes / self.disk.read_bandwidth
                      + consumed * self.disk.request_overhead)
            seconds = min(scan, sparse)
            return RetrievedClip(
                stored=meta,
                consumer_fidelity=self.consumer_fidelity,
                n_frames=consumed,
                retrieval_seconds=seconds,
            )

        n_decoded = decoded_frame_count(
            meta.n_frames, stride, self.fmt.coding.keyframe_interval
        )
        consumed = len(range(0, meta.n_frames, stride))
        seconds = n_decoded * self.codec.decode_frame_seconds(
            self.fmt.fidelity, self.fmt.coding
        )
        return RetrievedClip(
            stored=meta,
            consumer_fidelity=self.consumer_fidelity,
            n_frames=consumed,
            retrieval_seconds=seconds,
        )

    def read(self, stream: str, index: int) -> RetrievedClip:
        """Retrieve one segment, charging decode or disk time."""
        retrieved = self.assess(stream, index)
        self.clock.charge(retrieved.retrieval_seconds, self.category)
        return retrieved

    def read_range(self, stream: str, indices: List[int]) -> Iterator[RetrievedClip]:
        """Stream a list of segments in order."""
        for index in indices:
            yield self.read(stream, index)
