"""Planner parity: the vectorized plane and incremental coalescing must
reproduce the scalar planner's outputs exactly (Table-3 workload), the
exhaustive baseline must stay optimal, and memoization must cover >=90%
of profiler lookups (the paper's Section 6.4 claim is 92%)."""

import pytest

from repro.core.coalesce import StorageFormatPlanner
from repro.core.consumption import ConsumptionPlanner
from repro.ingest.budget import IngestBudget
from repro.operators.library import Consumer
from repro.profiler.coding_profiler import CodingProfiler

#: The Table-3 workload: six operators at the four declared accuracies.
_JACKSON_OPS = ("Diff", "S-NN", "NN")
_DASHCAM_OPS = ("Motion", "License", "OCR")
_ACCURACIES = (0.95, 0.9, 0.8, 0.7)


@pytest.fixture(scope="module")
def table3_decisions(jackson_profiler, dashcam_profiler):
    decisions = []
    for planner, ops in (
        (ConsumptionPlanner(jackson_profiler), _JACKSON_OPS),
        (ConsumptionPlanner(dashcam_profiler), _DASHCAM_OPS),
    ):
        for op in ops:
            for acc in _ACCURACIES:
                decisions.append(planner.derive(Consumer(op, acc)))
    return decisions


@pytest.fixture(scope="module")
def small_decisions(dashcam_profiler):
    """A <=6-CF workload the exhaustive baseline can afford."""
    planner = ConsumptionPlanner(dashcam_profiler)
    return [planner.derive(Consumer(op, acc))
            for op in _DASHCAM_OPS for acc in (0.95, 0.8)]


def _planner(use_table, cores=None):
    return StorageFormatPlanner(
        CodingProfiler(activity=0.6, use_table=use_table),
        IngestBudget(cores),
    )


def _assert_plans_identical(a, b, decisions):
    assert [sf.label for sf in a.formats] == [sf.label for sf in b.formats]
    assert a.storage_bytes_per_second == b.storage_bytes_per_second
    assert a.ingest_cores == b.ingest_cores
    assert a.rounds == b.rounds
    assert a.golden.label == b.golden.label
    for d in decisions:
        assert (a.subscription(d.consumer).label
                == b.subscription(d.consumer).label)


class TestVectorizedParity:
    def test_heuristic_plan_identical(self, table3_decisions):
        scalar = _planner(False).heuristic_coalesce(table3_decisions)
        table = _planner(True).heuristic_coalesce(table3_decisions)
        _assert_plans_identical(scalar, table, table3_decisions)

    def test_budgeted_heuristic_plan_identical(self, table3_decisions):
        free = _planner(True).heuristic_coalesce(table3_decisions)
        cores = max(0.4, free.ingest_cores * 0.5)
        scalar = _planner(False, cores).heuristic_coalesce(table3_decisions)
        table = _planner(True, cores).heuristic_coalesce(table3_decisions)
        _assert_plans_identical(scalar, table, table3_decisions)

    def test_distance_plan_identical(self, table3_decisions):
        scalar = _planner(False).distance_coalesce(
            table3_decisions, target_count=4
        )
        table = _planner(True).distance_coalesce(
            table3_decisions, target_count=4
        )
        _assert_plans_identical(scalar, table, table3_decisions)

    def test_exhaustive_plan_identical(self, small_decisions):
        scalar = _planner(False).exhaustive(small_decisions)
        table = _planner(True).exhaustive(small_decisions)
        _assert_plans_identical(scalar, table, small_decisions)


class TestExhaustiveBaseline:
    def test_exhaustive_never_worse_than_heuristic(self, small_decisions):
        heuristic = _planner(True).heuristic_coalesce(small_decisions)
        exhaustive = _planner(True).exhaustive(small_decisions)
        assert (exhaustive.storage_bytes_per_second
                <= heuristic.storage_bytes_per_second * (1 + 1e-9))

    def test_exhaustive_is_repeatable(self, small_decisions):
        """Fresh SFPlans per partition: no state leaks between runs of the
        same planner (the old code mutated golden flags on shared plans)."""
        planner = _planner(True)
        first = planner.exhaustive(small_decisions)
        second = planner.exhaustive(small_decisions)
        assert [sf.label for sf in first.formats] \
            == [sf.label for sf in second.formats]
        assert sum(sf.golden for sf in first.formats) == 1
        assert sum(sf.golden for sf in second.formats) == 1
        assert first.formats[0] is not second.formats[0]

    def test_golden_flag_not_shared_across_candidates(self, small_decisions):
        plan = _planner(True).exhaustive(small_decisions)
        golden = plan.golden
        # Exactly one golden format, and it owns the knob-wise max fidelity.
        for sf in plan.formats:
            if sf is not golden:
                assert not sf.golden


class TestMemoization:
    def test_jackson_memo_hit_rate(self, jackson_profiler):
        """Section 6.4: >=90% of profiler lookups during a heuristic
        coalescing run hit the memo (the paper reports 92%)."""
        planner = ConsumptionPlanner(jackson_profiler)
        decisions = [planner.derive(Consumer(op, acc))
                     for op in _JACKSON_OPS for acc in _ACCURACIES]
        profiler = CodingProfiler(activity=0.6)
        StorageFormatPlanner(profiler).heuristic_coalesce(decisions)
        assert profiler.stats.examined > 0
        assert profiler.stats.reuse_rate >= 0.90
