"""Multi-tenant contention sweep: 1-16 concurrent queries over 1-8 streams.

The paper measures single queries against an idle store; a deployed store
serves many analytics queries over many cameras at once.  This sweep runs
the concurrent executor over a simulated camera fleet (the six datasets
aliased onto eight streams) against constrained shared resources — one
disk I/O channel pool, a two-context decoder, four operator contexts — and
records how per-query slowdown grows with the number of concurrent
queries: the contention curve the single-query numbers hide.

Slowdown is measured per query as contended latency over its own
uncontended serial service time, so no isolated re-runs are needed.
"""

import pytest

from repro.analysis import concurrency_report
from repro.codec.decoder import DecoderPool
from repro.core.store import VStore
from repro.operators.library import default_library
from repro.query.cascade import QUERY_A, QUERY_B
from repro.query.scheduler import FIFOPolicy, OperatorContextPool
from repro.storage.disk import DiskBandwidthPool
from repro.video.datasets import DATASETS

N_QUERIES = (1, 2, 4, 8, 16)
N_STREAMS = (1, 2, 4, 8)
SEGMENTS_PER_STREAM = 4  # 32 s of footage per camera
QUERY_SPAN = 32.0

#: Eight fleet cameras, round-robin over the six dataset content models.
FLEET = [(f"cam{i:02d}", list(DATASETS)[i % len(DATASETS)]) for i in range(8)]


@pytest.fixture(scope="module")
def fleet_store(tmp_path_factory):
    library = default_library(
        names=("Diff", "S-NN", "NN", "Motion", "License", "OCR")
    )
    with VStore(workdir=str(tmp_path_factory.mktemp("fleet")),
                library=library) as store:
        store.configure()
        for stream, dataset in FLEET:
            store.ingest(dataset, n_segments=SEGMENTS_PER_STREAM,
                         stream=stream)
        yield store


def _run(store, n_queries, n_streams):
    """One cell of the sweep: admit, run, report."""
    executor = store.executor(
        policy=FIFOPolicy(),
        disk_pool=DiskBandwidthPool(1),
        decoder_pool=DecoderPool(2),
        operator_pool=OperatorContextPool(4),
    )
    for i in range(n_queries):
        stream, dataset = FLEET[i % n_streams]
        query = QUERY_A if dataset in ("jackson", "miami", "tucson") else QUERY_B
        executor.admit(query, dataset, 0.9, 0.0, QUERY_SPAN, stream=stream)
    outcomes = executor.run()
    return concurrency_report(outcomes, executor.stats())


def test_contention_sweep(benchmark, record, fleet_store):
    reports = {}
    for n in N_QUERIES:
        for m in N_STREAMS:
            reports[(n, m)] = _run(fleet_store, n, m)
    # time the heaviest cell for the perf trajectory
    benchmark.pedantic(
        lambda: _run(fleet_store, max(N_QUERIES), max(N_STREAMS)),
        rounds=1, iterations=1,
    )

    lines = [f"{'queries':>8} {'streams':>8} {'mean slowdn':>12} "
             f"{'max slowdn':>11} {'fairness':>9} {'makespan':>9} "
             f"{'decoder':>8} {'disk':>6}"]
    for (n, m), report in sorted(reports.items()):
        dec = report.utilization["decoder"]
        dsk = report.utilization["disk"]
        lines.append(
            f"{n:>8} {m:>8} {report.mean_slowdown:>11.2f}x "
            f"{report.max_slowdown:>10.2f}x {report.fairness:>9.3f} "
            f"{report.makespan:>8.3f}s {dec:>7.0%} {dsk:>5.0%}"
        )
    record("Concurrent queries — contention sweep", "\n".join(lines))

    # A lone query is never slowed, whatever the fleet size.
    for m in N_STREAMS:
        assert reports[(1, m)].mean_slowdown == pytest.approx(1.0)
    # The acceptance cell: 16 queries over 8 streams on constrained pools
    # must show real contention-induced slowdown for every query.
    worst = reports[(16, 8)]
    assert worst.mean_slowdown > 1.0
    assert all(row.slowdown > 1.0 for row in worst.rows)
    # Contention grows with concurrency: the full fleet under 16 queries
    # is strictly worse than under 2, which is worse than a lone query.
    assert (worst.mean_slowdown
            > reports[(2, 8)].mean_slowdown
            > reports[(1, 8)].mean_slowdown - 1e-9)
    # Sharing never loses throughput: the concurrent makespan stays below
    # running the same queries back to back.
    serial = sum(row.service for row in worst.rows)
    assert worst.makespan < serial
    # Fairness stays meaningful under FIFO round-robin dynamics.
    assert worst.fairness > 0.5


def test_policies_agree_on_total_work(record, fleet_store):
    """Whatever the policy, the same tasks run — only waiting shifts."""
    from repro.query.scheduler import DeadlinePolicy, FairSharePolicy

    def busy_under(policy):
        executor = fleet_store.executor(
            policy=policy, decoder_pool=DecoderPool(1)
        )
        for i in range(6):
            stream, dataset = FLEET[i]
            query = (QUERY_A if dataset in ("jackson", "miami", "tucson")
                     else QUERY_B)
            executor.admit(query, dataset, 0.9, 0.0, QUERY_SPAN,
                           stream=stream, deadline=float(i))
        executor.run()
        return executor.stats()

    stats = {p.name: busy_under(p) for p in
             (FIFOPolicy(), FairSharePolicy(), DeadlinePolicy())}
    reference = stats["fifo"].busy_seconds
    for name, stat in stats.items():
        for resource, busy in stat.busy_seconds.items():
            assert busy == pytest.approx(reference[resource]), (name, resource)
    lines = [f"{'policy':>8} {'makespan':>9}"]
    for name, stat in stats.items():
        lines.append(f"{name:>8} {stat.makespan:>8.3f}s")
    record("Concurrent queries — policy makespans", "\n".join(lines))
