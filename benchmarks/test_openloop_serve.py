"""Open-loop serving at scale: 1k-10k query arrival streams with SLOs.

The executor-scale sweep measures the *closed-loop* regime (everything
admitted at t=0); this module pushes the open-loop serving plane — two
tenants with deterministic Poisson arrival streams, SLO deadlines on the
gold tenant, EDF admission control bounding the in-flight set — through
the heap core and records the operator-facing numbers alongside the raw
scheduler throughput:

* 1k- and 10k-query cells land in BENCH.json with p50/p95/p99 latency,
  deadline-miss rate, Jain fairness over tenant slowdowns and the peak
  admission-queue depth, so the serving trajectory is diffable across
  PRs just like events/s;
* a 256-query smoke cell (``workload/smoke_openloop``) runs in the CI
  perf-smoke job under a hard wall budget, is gated on events/s through
  ``bench-diff`` against the committed baseline, and asserts a
  deadline-miss-rate ceiling — the underloaded fleet must keep meeting
  its SLOs, whatever the host.

Arrival streams come straight from :mod:`repro.query.workload`
(per-tenant seeds), and queries are admitted from precomputed plans so
the measured wall-clock is the serving plane, not the planner.
"""

from heapq import merge

import pytest

from repro.analysis.slo import slo_report
from repro.codec.decoder import DecoderPool
from repro.core.store import VStore
from repro.operators.library import default_library
from repro.query.cascade import QUERY_A
from repro.query.scheduler import (
    AdmissionConfig,
    FairSharePolicy,
    OperatorContextPool,
)
from repro.query.workload import poisson_arrivals
from repro.storage.disk import DiskBandwidthPool
from repro.units import GB

N_STREAMS = 8
SEGMENTS_PER_STREAM = 8
SPAN = 64.0
SHARDS = 4
SPINDLE_READ_BW = 0.125 * GB
SPINDLE_WRITE_BW = 0.1 * GB

#: Gold queries carry ``deadline = arrival + SLO_SECONDS``.
SLO_SECONDS = 5.0
#: Tight enough that arrival bursts actually queue in admission (the
#: near-saturation fleet floats around 6 in flight), loose enough that
#: the underloaded smoke fleet passes straight through.
MAX_IN_FLIGHT = 6

#: Near-saturation per-tenant arrival rate for the scale cells: the
#: 4-shard fleet drains roughly 2 q/s with these pools, so 2 x 1.0 q/s
#: keeps the admission queue alive without running away.
SCALE_RATE = 1.0
SCALE_QUERY_COUNTS = (1_000, 10_000)
SCALE_WALL_BUDGET = 30.0

#: The CI smoke cell runs *underloaded* (2 x 0.5 q/s against ~2 q/s of
#: capacity): latency is then service-dominated, far under the 5 s SLO,
#: and the deterministic simulated miss rate must stay under this
#: ceiling on any host.
SMOKE_QUERIES = 256
SMOKE_RATE = 0.5
SMOKE_WALL_BUDGET = 5.0
SMOKE_MISS_RATE_CEILING = 0.02
SMOKE_CELL = "workload/smoke_openloop"


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    library = default_library(
        names=("Diff", "S-NN", "NN", "Motion", "License", "OCR")
    )
    store = VStore(workdir=str(tmp_path_factory.mktemp("serve")),
                   library=library, shards=SHARDS)
    for disk in store.disk_array.disks:
        disk.read_bandwidth = SPINDLE_READ_BW
        disk.write_bandwidth = SPINDLE_WRITE_BW
    store.configure()
    engine = store.engine("jackson")
    plans = {}
    for i in range(N_STREAMS):
        stream = f"cam{i:02d}"
        store.ingest("jackson", n_segments=SEGMENTS_PER_STREAM,
                     stream=stream)
        plans[stream] = engine.plan(QUERY_A, 0.9, store.segments, 0.0,
                                    SPAN, stream=stream)
    yield store, plans
    store.close()


def _arrival_stream(n_queries, rate_per_tenant, seed=0):
    """First ``n_queries`` arrivals of two merged per-tenant streams.

    Each tenant draws its own seeded Poisson stream (over-provisioned in
    horizon, then truncated), exactly as ``build_workload`` would; gold
    arrivals carry an SLO deadline, bronze arrivals none.
    """
    horizon = 1.5 * n_queries / rate_per_tenant  # per tenant: ~0.75 n
    streams = [
        sorted((t, tenant) for t in poisson_arrivals(
            rate_per_tenant, horizon, (seed, tenant)))
        for tenant in ("gold", "bronze")
    ]
    merged = list(merge(*streams))[:n_queries]
    assert len(merged) == n_queries, "horizon too short for the rate"
    return merged


def _serve_fleet(store, plans, n_queries, rate_per_tenant):
    ex = store.executor(
        policy=FairSharePolicy(),
        disk_pool=DiskBandwidthPool(1),
        decoder_pool=DecoderPool(2),
        operator_pool=OperatorContextPool(4),
        admission=AdmissionConfig(max_in_flight=MAX_IN_FLIGHT,
                                  queue_policy="edf"),
        cache=None,  # identical service per query: repeat runs bit-equal
        metrics=None,
        core="heap",
    )
    for i, (t, tenant) in enumerate(_arrival_stream(n_queries,
                                                    rate_per_tenant)):
        stream = f"cam{i % N_STREAMS:02d}"
        deadline = t + SLO_SECONDS if tenant == "gold" else None
        ex.admit(QUERY_A, "jackson", 0.9, 0.0, SPAN, stream=stream,
                 plan=plans[stream], arrival=t, tenant=tenant,
                 deadline=deadline)
    outcomes = ex.run()
    stats = ex.stats()
    report = slo_report(outcomes, queue_timeline=ex.admission_timeline,
                        makespan=stats.makespan)
    return stats, report


def _cell_fields(stats, report, n_queries, rate_per_tenant):
    o = report.overall
    return dict(
        core=stats.core,
        shards=SHARDS,
        queries=n_queries,
        tenants=len(report.tenants),
        rate_per_tenant=rate_per_tenant,
        slo_seconds=SLO_SECONDS,
        max_in_flight=MAX_IN_FLIGHT,
        wall_seconds=round(stats.wall_seconds, 4),
        events=stats.events,
        events_per_second=round(stats.events_per_second),
        sim_makespan=round(stats.makespan, 3),
        throughput_qps=round(report.throughput_qps, 3),
        p50_latency=round(o.p50_latency, 4),
        p95_latency=round(o.p95_latency, 4),
        p99_latency=round(o.p99_latency, 4),
        miss_rate=round(o.miss_rate, 4),
        jain_fairness=round(report.fairness, 4),
        peak_queued=report.peak_queued,
    )


def test_openloop_serve_scale(record, bench_metrics, fleet):
    """1k and 10k open-loop queries under EDF admission, near saturation."""
    store, plans = fleet
    lines = [f"{'queries':>8} {'wall':>9} {'events/s':>9} {'sim':>9} "
             f"{'p50':>7} {'p95':>7} {'p99':>7} {'miss%':>6} {'jain':>6} "
             f"{'peakQ':>6}"]
    for n in SCALE_QUERY_COUNTS:
        stats, report = _serve_fleet(store, plans, n, SCALE_RATE)
        o = report.overall
        assert o.n_queries == n  # every arrival served, none stuck
        assert o.p50_latency <= o.p95_latency <= o.p99_latency
        assert report.queue_timeline[-1][1:] == (0, 0)  # drained clean
        assert report.peak_queued > 0  # admission control actually bound
        assert stats.core == "heap"  # open loop never takes the fastpath
        assert stats.wall_seconds < SCALE_WALL_BUDGET
        bench_metrics(f"workload/serve_q{n}",
                      **_cell_fields(stats, report, n, SCALE_RATE))
        lines.append(
            f"{n:>8} {stats.wall_seconds * 1e3:>7.1f}ms "
            f"{stats.events_per_second:>9,.0f} {stats.makespan:>8.1f}s "
            f"{o.p50_latency:>7.3f} {o.p95_latency:>7.3f} "
            f"{o.p99_latency:>7.3f} {o.miss_rate * 100:>5.1f}% "
            f"{report.fairness:>6.3f} {report.peak_queued:>6}"
        )
    record("Open-loop serving — 2 tenants x 1.0 q/s Poisson, EDF "
           f"admission (max in-flight {MAX_IN_FLIGHT}), gold SLO "
           f"{SLO_SECONDS:.0f}s, 4 shards",
           "\n".join(lines))


def test_perf_smoke_openloop(bench_metrics, fleet):
    """CI perf-smoke: underloaded 256-query serve meets its SLOs.

    Runs via ``pytest benchmarks/test_openloop_serve.py -k smoke`` in the
    perf-smoke job; the cell's events/s is gated by ``bench-diff``
    against BENCH_BASELINE.json, and the simulated deadline-miss rate —
    a pure function of the seeded workload — must stay under
    ``SMOKE_MISS_RATE_CEILING``.
    """
    store, plans = fleet
    best, report = _serve_fleet(store, plans, SMOKE_QUERIES, SMOKE_RATE)
    for _ in range(2):  # best of 3: CI workers inflate ~100 ms runs
        stats, again = _serve_fleet(store, plans, SMOKE_QUERIES, SMOKE_RATE)
        assert again == report  # the simulation itself must replay
        if stats.wall_seconds < best.wall_seconds:
            best = stats
    fields = _cell_fields(best, report, SMOKE_QUERIES, SMOKE_RATE)
    fields["wall_budget_seconds"] = SMOKE_WALL_BUDGET
    fields["miss_rate_ceiling"] = SMOKE_MISS_RATE_CEILING
    bench_metrics(SMOKE_CELL, **fields)
    assert best.wall_seconds < SMOKE_WALL_BUDGET
    assert report.overall.miss_rate <= SMOKE_MISS_RATE_CEILING
    assert report.overall.mean_queued < SLO_SECONDS
