"""Coding profiler: storage format -> (size, encode cost, retrieval speed).

Heuristic-based coalescing (Section 4.3) profiles candidate storage
formats: it encodes a sample clip to measure the video size and ingestion
cost, and decodes it to measure retrieval speed.  Results are memoized —
Section 6.4 reports that 92% of formats examined during coalescing had
already been profiled.

Since the vectorized profiling plane, the numeric answers come from a
shared :class:`~repro.codec.tables.ProfileTable` (one NumPy evaluation of
each codec surface over the whole knob grid, cached per codec/disk/
activity) instead of per-call scalar arithmetic.  The simulated profiling
*work* is unchanged: the first query for a format still charges the clock
for encoding and decoding the sample clip, and the stats still count runs
vs memoized lookups.  ``use_table=False`` restores the scalar path (the
perf benchmark compares both).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional, Tuple

from repro.clock import SimClock
from repro.codec.model import CodecModel, DEFAULT_CODEC
from repro.codec.tables import ProfileTable, get_profile_table
from repro.retrieval.speed import retrieval_speed
from repro.storage.disk import DiskModel, DEFAULT_DISK
from repro.units import PROFILE_CLIP_SECONDS
from repro.video.format import StorageFormat


@dataclass(frozen=True)
class CodingProfile:
    """Measured properties of one storage format."""

    fmt: StorageFormat
    bytes_per_second: float  # on-disk size per video second
    ingest_cost: float  # one-core CPU seconds per video second
    base_retrieval_speed: float  # x realtime, consumer taking every frame


@dataclass
class CodingProfilerStats:
    """Accounting of coding-profiling effort (Section 6.4).

    ``memo_hits`` counts lookups served from the profiler's own memos;
    ``adequacy_hits`` counts planner-level adequacy-cache reuse of profiled
    results (kept in a separate counter so the pure profiler-memo metric
    stays comparable).  The paper's 92% figure counts format examinations
    that reused an existing profile — the sum of both.
    """

    runs: int = 0
    memo_hits: int = 0
    adequacy_hits: int = 0
    seconds: float = 0.0

    @property
    def examined(self) -> int:
        """Format examinations: profiling runs plus all memoized reuse."""
        return self.runs + self.memo_hits + self.adequacy_hits

    @property
    def reuse_rate(self) -> float:
        """Fraction of examinations served from a cache (Section 6.4)."""
        examined = self.examined
        if examined == 0:
            return 0.0
        return (self.memo_hits + self.adequacy_hits) / examined


class CodingProfiler:
    """Profiles storage formats on a sample clip."""

    def __init__(
        self,
        activity: float = 0.35,
        clip_seconds: float = PROFILE_CLIP_SECONDS,
        codec: CodecModel = DEFAULT_CODEC,
        disk: DiskModel = DEFAULT_DISK,
        clock: Optional[SimClock] = None,
        use_table: bool = True,
    ):
        #: Mean content activity of the profiled stream (size calibration).
        self.activity = activity
        self.clip_seconds = clip_seconds
        self.codec = codec
        self.disk = disk
        self.clock = clock or SimClock()
        self.stats = CodingProfilerStats()
        self._memo: Dict[StorageFormat, CodingProfile] = {}
        self._speed_memo: Dict[
            Tuple[StorageFormat, Optional[Fraction]], float
        ] = {}
        self._table: Optional[ProfileTable] = (
            get_profile_table(codec, disk, activity) if use_table else None
        )

    @property
    def table(self) -> Optional[ProfileTable]:
        """The shared profile table, or ``None`` on the scalar path."""
        return self._table

    def profile(self, fmt: StorageFormat) -> CodingProfile:
        """Measure one storage format (memoized)."""
        cached = self._memo.get(fmt)
        if cached is not None:
            self.stats.memo_hits += 1
            return cached

        if self._table is not None:
            bytes_per_second, ingest_cost, base_speed = \
                self._table.profile_values(fmt)
        else:
            fidelity, coding = fmt.fidelity, fmt.coding
            bytes_per_second = self.codec.encoded_bytes_per_second(
                fidelity, coding, self.activity
            )
            ingest_cost = self.codec.encode_seconds_per_video_second(
                fidelity, coding
            )
            base_speed = retrieval_speed(fmt, None, self.codec, self.disk)

        # Simulated profiling work: encode the sample clip, then decode it
        # (or read it back for raw formats).
        decode_cost = (
            0.0 if base_speed == float("inf") else self.clip_seconds / base_speed
        )
        run_seconds = ingest_cost * self.clip_seconds + decode_cost
        self.clock.charge(run_seconds, "profiling")
        self.stats.runs += 1
        self.stats.seconds += run_seconds

        result = CodingProfile(fmt, bytes_per_second, ingest_cost, base_speed)
        self._memo[fmt] = result
        return result

    def retrieval_speed(
        self, fmt: StorageFormat, consumer_sampling: Optional[Fraction] = None
    ) -> float:
        """Retrieval speed of ``fmt`` for a consumer sampling at the given
        rate, memoized per (format, sampling rate); the format itself must
        have been profiled for accounting."""
        key = (fmt, consumer_sampling)
        cached = self._speed_memo.get(key)
        if cached is not None:
            self.stats.memo_hits += 1
            return cached

        self.profile(fmt)
        speed: Optional[float] = None
        if self._table is not None:
            speed = self._table.retrieval_speed(fmt, consumer_sampling)
        if speed is None:  # scalar path, or a query outside the table grid
            speed = retrieval_speed(
                fmt, consumer_sampling, self.codec, self.disk
            )
        self._speed_memo[key] = speed
        return speed

    def reset_stats(self) -> None:
        self.stats = CodingProfilerStats()

    def clear_memo(self) -> None:
        self._memo.clear()
        self._speed_memo.clear()
