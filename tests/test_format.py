"""Storage and consumption formats (Section 3.1)."""

from fractions import Fraction

from repro.video.coding import Coding, RAW
from repro.video.fidelity import Fidelity
from repro.video.format import ConsumptionFormat, StorageFormat, raw_format


def _fid(label):
    return Fidelity.parse(label)


def test_labels_look_like_the_paper():
    sf = StorageFormat(_fid("best-720p-1-100%"), Coding("slowest", 250))
    assert sf.label == "best-720p-1-100% 250-slowest"
    cf = ConsumptionFormat(_fid("good-540p-1/6-100%"))
    assert cf.label == "good-540p-1/6-100%"


def test_raw_flag():
    assert raw_format(_fid("best-200p-1-100%")).is_raw
    assert not StorageFormat(_fid("best-200p-1-100%"), Coding("fast", 10)).is_raw


def test_can_supply_requires_richer_fidelity():
    sf = StorageFormat(_fid("good-540p-1/2-100%"), Coding("slowest", 250))
    assert sf.can_supply(ConsumptionFormat(_fid("good-540p-1/6-75%")))
    assert sf.can_supply(ConsumptionFormat(_fid("bad-200p-1/30-50%")))
    assert not sf.can_supply(ConsumptionFormat(_fid("best-540p-1/6-100%")))
    assert not sf.can_supply(ConsumptionFormat(_fid("good-720p-1/6-100%")))


def test_with_coding_swaps_only_coding():
    sf = StorageFormat(_fid("good-540p-1/2-100%"), Coding("slowest", 250))
    sf2 = sf.with_coding(RAW)
    assert sf2.fidelity == sf.fidelity
    assert sf2.is_raw
