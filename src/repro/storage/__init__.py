"""Storage substrate: key-value backend, disk model, segment store, aging.

The paper stores 8-second segments as MB-size values in LMDB.  This
subpackage provides:

* :mod:`repro.storage.kvstore` — an embedded, durable key-value store
  (append-only log + in-memory index + compaction) standing in for LMDB;
* :mod:`repro.storage.disk` — a disk bandwidth/seek model charged against
  the simulated clock;
* :mod:`repro.storage.sharding` — the sharded multi-disk plane: N disk
  shards behind pluggable placement policies, with greedy rebalancing;
* :mod:`repro.storage.segment_store` — the video-segment index built on the
  KV store, tracking per-format footprints and per-key shard placement;
* :mod:`repro.storage.lifespan` — age tracking and erosion execution.
"""

from repro.storage.disk import DiskModel, DEFAULT_DISK
from repro.storage.kvstore import KVStore
from repro.storage.lifespan import AgeTracker, apply_erosion_step
from repro.storage.segment_store import SegmentStore, StoredSegment
from repro.storage.sharding import (
    HashPlacement,
    LocalityAwarePlacement,
    PLACEMENTS,
    PlacementPolicy,
    RebalanceReport,
    RoundRobinPlacement,
    ShardedDiskArray,
    placement_named,
    plan_rebalance,
)

__all__ = [
    "AgeTracker",
    "apply_erosion_step",
    "DEFAULT_DISK",
    "DiskModel",
    "HashPlacement",
    "KVStore",
    "LocalityAwarePlacement",
    "PLACEMENTS",
    "PlacementPolicy",
    "RebalanceReport",
    "RoundRobinPlacement",
    "SegmentStore",
    "ShardedDiskArray",
    "StoredSegment",
    "placement_named",
    "plan_rebalance",
]
