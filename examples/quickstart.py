#!/usr/bin/env python3
"""Quickstart: derive a configuration and ask for query speed estimates.

Run:  python examples/quickstart.py

This walks the backward derivation of Section 4 on the six benchmark
operators, prints the derived configuration (the analog of the paper's
Table 3), and estimates end-to-end speeds for the two benchmark queries.
"""

from repro import VStore
from repro.analysis.tables import format_configuration_table
from repro.operators.library import default_library
from repro.units import fmt_bytes, DAY


def main() -> None:
    library = default_library(
        names=("Diff", "S-NN", "NN", "Motion", "License", "OCR")
    )
    store = VStore(library=library)

    print("Deriving the video-format configuration (Section 4)...")
    config = store.configure()
    print(f"  consumers:          {len(config.consumers)}")
    print(f"  unique CFs:         {config.unique_cf_count}")
    print(f"  storage formats:    {len(config.plan.formats)}")
    print(f"  knobs configured:   {config.knob_count}")
    print(f"  profiling runs:     {config.stats.operator_runs} operator, "
          f"{config.stats.coding_runs} coding")
    print(f"  ingest cost:        {config.plan.ingest_cores:.2f} cores/stream")
    rate = config.plan.storage_bytes_per_second
    print(f"  storage cost:       {fmt_bytes(rate)}/s "
          f"({fmt_bytes(rate * DAY)}/day)")
    print()
    print(format_configuration_table(config))
    print()

    for query, dataset in (("A", "jackson"), ("B", "dashcam")):
        print(f"Query {query} on {dataset} (one hour of footage):")
        for accuracy in (0.95, 0.9, 0.8, 0.7):
            report = store.query(query, dataset=dataset, accuracy=accuracy,
                                 duration=3600.0)
            print(f"  accuracy {accuracy:.2f}: {report.speed:8.1f}x realtime")
        print()


if __name__ == "__main__":
    main()
