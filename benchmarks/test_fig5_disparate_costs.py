"""Figure 5: fidelity options with the *same* accuracy have disparate
resource costs — there is no single most resource-efficient option.

The paper shows three License options all scoring ~0.8 with conflicting
cost profiles (e.g. high image quality buys cheap consumption but costly
storage).
"""

import numpy as np

from repro.codec.model import DEFAULT_CODEC
from repro.profiler.profiler import OperatorProfiler
from repro.video.coding import Coding
from repro.video.fidelity import fidelity_space

CODING = Coding("med", 250)
TARGET, BAND = 0.80, 0.04


def test_fig5_equal_accuracy_disparate_costs(benchmark, record, full_library):
    profiler = OperatorProfiler(full_library, "dashcam")

    def find_band():
        options = []
        for fid in fidelity_space():
            profile = profiler.profile("License", fid)
            if abs(profile.accuracy - TARGET) <= BAND:
                ingest = DEFAULT_CODEC.encode_seconds_per_video_second(
                    fid, CODING)
                storage = DEFAULT_CODEC.encoded_bytes_per_second(
                    fid, CODING, 0.6)
                retrieval = 1.0 / DEFAULT_CODEC.decode_speed(fid, CODING)
                consume = 1.0 / profile.consumption_speed
                options.append((fid.label, profile.accuracy,
                                ingest, storage, retrieval, consume))
        return options

    options = benchmark.pedantic(find_band, rounds=1, iterations=1)
    assert len(options) >= 3

    # Normalize each cost axis and look at the spread among equals.
    costs = np.array([o[2:] for o in options])
    normalized = costs / costs.max(axis=0)

    lines = [f"{'fidelity':>24} {'F1':>5}  ingest storage retr consume "
             f"(normalized)"]
    for (label, acc, *_), norm in zip(options, normalized):
        lines.append(f"{label:>24} {acc:>5.2f}  "
                     + " ".join(f"{v:6.2f}" for v in norm))
    record("Figure 5 — disparate costs at accuracy ~0.8", "\n".join(lines))

    # Equal-accuracy options have *disparate* cost profiles: the cost axes
    # do not totally order them — some pair is incomparable (one cheaper on
    # one axis, the other cheaper on another).  (Our cost axes are more
    # correlated than the paper's testbed, so the stronger claim that no
    # option dominates every axis does not always hold; see EXPERIMENTS.md.)
    def incomparable(a, b):
        return ((a < b - 1e-12).any() and (b < a - 1e-12).any())

    pairs = [
        (i, j)
        for i in range(len(options))
        for j in range(i + 1, len(options))
        if incomparable(costs[i], costs[j])
    ]
    assert pairs, "all equal-accuracy options are totally ordered by cost"
    # And the spread is wide: the costliest option on some axis pays
    # several times the cheapest.
    assert (costs.max(axis=0) / costs.min(axis=0)).max() > 2.0
