"""Unit helpers and constants shared across the library.

The simulator accounts for three kinds of quantities:

* data sizes, always tracked internally in **bytes**;
* durations, always tracked internally in **seconds** (video time or
  simulated compute time);
* speeds, expressed as a multiple of video realtime ("x realtime"):
  a speed of 30 means one second of video is processed in 1/30 s.
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR

#: Segment length used throughout the store (the paper stores 8-second
#: segments in LMDB).
SEGMENT_SECONDS = 8.0

#: Length of the clip used for every profiling run (the paper profiles on
#: 10-second clips).
PROFILE_CLIP_SECONDS = 10.0


def bytes_per_day(bytes_per_second: float) -> float:
    """Convert a byte rate into bytes accumulated over one day."""
    return bytes_per_second * DAY


def speed_x_realtime(video_seconds: float, compute_seconds: float) -> float:
    """Speed of processing ``video_seconds`` of footage in ``compute_seconds``.

    Returns ``float('inf')`` when the compute time is zero, which models a
    consumer that is never the bottleneck.
    """
    if compute_seconds <= 0.0:
        return float("inf")
    return video_seconds / compute_seconds


def fmt_bytes(n: float) -> str:
    """Render a byte count using the largest sensible binary unit."""
    for unit, name in ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if abs(n) >= unit:
            return f"{n / unit:.2f} {name}"
    return f"{n:.0f} B"


def fmt_speed(x: float) -> str:
    """Render an x-realtime speed the way the paper annotates figures."""
    if x == float("inf"):
        return "inf"
    if x >= 1000:
        return f"{x / 1000.0:.1f}k x"
    if x >= 10:
        return f"{x:.0f}x"
    return f"{x:.1f}x"
