"""Figure 12: transcoding cost does not scale up with operator count.

Adding operators to the library (in Table 2 order) grows the ingestion
cost only until the storage-format set covers the demand space; further
operators share existing formats and the cost plateaus.

The sweep shares operator profilers across points (an operator's profile
does not depend on which other operators are deployed) and coding
profilers per content activity, so each point profiles only what its new
operator demands.
"""

from repro.analysis.sweeps import operator_scaling_series
from repro.operators.library import TABLE2_ORDER


def test_fig12_ingest_cost_plateaus(benchmark, record):
    series = benchmark.pedantic(
        operator_scaling_series, rounds=1, iterations=1
    )

    lines = [f"{'#ops':>5} {'added':>9} {'CPU %':>8} {'#SFs':>5} {'memo':>6}"]
    for n, op, cores, sfs, memo in zip(
        series["n_operators"], series["added"], series["ingest_cores"],
        series["n_formats"], series["memo_hit_rate"],
    ):
        lines.append(
            f"{n:>5} {op:>9} {cores * 100.0:>8.0f} {sfs:>5} {memo:>6.1%}"
        )
    record("Figure 12 — operator scaling", "\n".join(lines))

    cpus = [c * 100.0 for c in series["ingest_cores"]]
    # The cost stabilizes in the tail: the last additions are cheap
    # relative to the growth at the head (the paper's plateau beyond 5).
    head_growth = max(cpus[:5]) - min(cpus[:5])
    tail_growth = max(cpus[5:]) - min(cpus[5:])
    assert tail_growth <= max(head_growth, 0.35 * max(cpus))
    # And the last operator adds almost nothing.
    assert cpus[-1] <= cpus[-2] * 1.25 + 1.0
    assert len(cpus) == len(TABLE2_ORDER)
