"""Monotone 2-D accuracy-boundary search (Section 4.2, Figure 8).

Given a 2-D grid of fidelity options whose accuracy is monotone along both
axes (observation O1), the accuracy boundary — for every row, the poorest
column that still meets the target accuracy — can be traced with
O(rows + cols) probes instead of rows x cols: walking from the richest row
toward the poorest, the boundary column never moves toward poorer values.

Unlike the classic saddleback search that stops at the first hit, VStore
must walk the *entire* boundary, because the minimally adequate point is
not necessarily the cheapest one to consume (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple


@dataclass
class BoundaryResult:
    """Outcome of one 2-D boundary walk."""

    #: (row, col) cells on the accuracy boundary (adequate, minimal per row).
    boundary: List[Tuple[int, int]] = field(default_factory=list)
    #: every probed cell, in probe order (for accounting/visualization).
    probed: List[Tuple[int, int]] = field(default_factory=list)


class BoundarySearch:
    """Walks the accuracy boundary of one 2-D slice of the fidelity space.

    ``adequate(row, col)`` must be monotone non-decreasing in both indices,
    where a larger index means a richer knob value.  Probes are counted via
    the ``probed`` list; memoization is the caller's concern (the profiler
    already memoizes).
    """

    def __init__(self, n_rows: int, n_cols: int,
                 adequate: Callable[[int, int], bool]):
        if n_rows <= 0 or n_cols <= 0:
            raise ValueError("boundary search needs a non-empty grid")
        self.n_rows = n_rows
        self.n_cols = n_cols
        self._adequate = adequate

    def walk(self) -> BoundaryResult:
        """Trace the boundary from the richest row down to the poorest."""
        result = BoundaryResult()

        def adequate(r: int, c: int) -> bool:
            result.probed.append((r, c))
            return self._adequate(r, c)

        col = 0
        for row in range(self.n_rows - 1, -1, -1):
            # The boundary column is monotone: poorer rows need >= col.
            while col < self.n_cols and not adequate(row, col):
                col += 1
            if col == self.n_cols:
                # No adequate cell in this row; poorer rows cannot have any
                # (monotonicity along the row axis), so the walk ends.
                break
            result.boundary.append((row, col))
        return result
