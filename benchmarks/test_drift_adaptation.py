"""Drift-adaptation smoke benchmark: online evolution under query-mix drift.

Two BENCH.json cells back the CI drift-smoke job:

* ``drift_adaptation/smoke_scenario`` — the full three-arm regret scenario
  (:func:`repro.analysis.drift.drift_regret_report`).  The recovery
  fraction is the PR acceptance bar (>= 60% of the oracle's advantage) and
  is asserted here, so a planner or detector regression fails CI even
  though the cell's wall clock does not gate.
* ``drift_adaptation/smoke_evolve`` — one shared evolution run (foreground
  queries racing re-encode jobs on tight pools) whose scheduling
  throughput (``events_per_second``) is gated by ``bench-diff`` against
  the committed baseline, like the executor-scale smoke cell.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.drift import (
    drift_regret_report,
    format_drift_table,
)
from repro.codec.decoder import DecoderPool
from repro.core.evolve import decide_consumers, legacy_configuration
from repro.core.store import VStore
from repro.operators.library import Consumer, default_library
from repro.query.scheduler import OperatorContextPool
from repro.storage.disk import DiskBandwidthPool
from repro.units import SEGMENT_SECONDS

RECOVERY_FLOOR = 0.60
#: Hard real-time budget for each smoke cell; the whole scenario runs in
#: about a second on a laptop, so a minute means something is badly wrong.
SMOKE_WALL_BUDGET = 60.0

PHASE1 = (Consumer("Motion", 0.9), Consumer("License", 0.9),
          Consumer("OCR", 0.9))
PHASE2 = (Consumer("Diff", 0.9), Consumer("S-NN", 0.9), Consumer("NN", 0.9))
N_SEGMENTS = 4
T1 = N_SEGMENTS * SEGMENT_SECONDS - 1.0


def _specs(query: str, count: int):
    return [{"query": query, "dataset": "jackson", "accuracy": 0.9,
             "t0": 0.0, "t1": T1} for _ in range(count)]


def test_drift_smoke_recovery(record, bench_metrics):
    """The acceptance scenario, timed: regret vs oracle on the 2-phase mix."""
    t0 = time.perf_counter()
    report = drift_regret_report()
    wall = time.perf_counter() - t0

    assert report.drifted
    assert report.recovery is not None
    assert report.recovery >= RECOVERY_FLOOR
    assert wall < SMOKE_WALL_BUDGET

    bench_metrics(
        "drift_adaptation/smoke_scenario",
        wall_seconds=round(wall, 4),
        recovery=round(report.recovery, 4),
        frozen_seconds=round(report.frozen_seconds, 4),
        online_seconds=round(report.online_seconds, 4),
        oracle_seconds=round(report.oracle_seconds, 4),
        drift_score=round(report.drift_score, 4),
        wall_budget_seconds=SMOKE_WALL_BUDGET,
    )
    record("Drift adaptation (regret vs oracle)", format_drift_table(report))


def test_drift_smoke_evolution_throughput(bench_metrics, tmp_path_factory):
    """Gated cell: event throughput of one contended evolution run."""
    lib = default_library(names=tuple(c.operator for c in PHASE1 + PHASE2))
    workdir = tmp_path_factory.mktemp("drift-smoke")
    with VStore(workdir=str(workdir), library=lib) as store:
        store.configure(consumers=list(PHASE1))
        store.ingest("jackson", n_segments=N_SEGMENTS)
        store.execute_many(_specs("B", 4))
        decisions = decide_consumers(
            store.library, PHASE2, clock=store.clock,
            known={d.consumer: d for d in store.configuration.decisions},
        )
        store.adopt(legacy_configuration(store.configuration, decisions))
        store.execute_many(_specs("A", 4))
        assert store.drift.drifted

        report = store.evolve_online(
            foreground=_specs("A", 2),
            disk_pool=DiskBandwidthPool(1),
            decoder_pool=DecoderPool(1),
            operator_pool=OperatorContextPool(2),
        )
        stats = report.stats

    assert report.replan.changed
    assert stats.events > 0
    assert stats.wall_seconds < SMOKE_WALL_BUDGET
    bench_metrics(
        "drift_adaptation/smoke_evolve",
        core=stats.core,
        shards=1,
        queries=stats.n_queries,
        events=stats.events,
        events_per_second=round(stats.events_per_second),
        wall_seconds=round(stats.wall_seconds, 4),
        sim_makespan=round(stats.makespan, 3),
        reencoded_segments=report.reencoded_segments,
        wall_budget_seconds=SMOKE_WALL_BUDGET,
    )
