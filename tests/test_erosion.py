"""Erosion planning (Section 4.4, Figures 10 and 13)."""

import pytest

from repro.core.coalesce import StorageFormatPlanner
from repro.core.consumption import ConsumptionPlanner
from repro.core.erosion import ErosionPlanner, power_law_target
from repro.errors import ErosionError
from repro.operators.library import Consumer
from repro.profiler.coding_profiler import CodingProfiler
from repro.profiler.profiler import OperatorProfiler
from repro.units import DAY, TB


@pytest.fixture(scope="module")
def plan_and_rates(library):
    planner = ConsumptionPlanner(OperatorProfiler(library, "dashcam"))
    decisions = planner.derive_all(
        [Consumer(op, acc)
         for op in ("Motion", "License", "OCR")
         for acc in (0.95, 0.9, 0.8, 0.7)]
    )
    profiler = CodingProfiler(activity=0.6)
    plan = StorageFormatPlanner(profiler).heuristic_coalesce(decisions)
    rates = {sf.label: profiler.profile(sf.fmt).bytes_per_second
             for sf in plan.formats}
    return plan, rates


@pytest.fixture(scope="module")
def planner(plan_and_rates):
    plan, rates = plan_and_rates
    return ErosionPlanner(plan.formats, rates, lifespan_days=10)


def test_power_law_shape():
    assert power_law_target(1, 2.0, 0.1) == pytest.approx(1.0)
    assert power_law_target(10, 2.0, 0.1) == pytest.approx(0.9 / 100 + 0.1)
    # k = 0: no decay at any age.
    assert power_law_target(7, 0.0, 0.1) == pytest.approx(1.0)


def test_requires_golden():
    from repro.core.coalesce import SFPlan
    from repro.video.coding import Coding
    from repro.video.fidelity import Fidelity
    sf = SFPlan(Fidelity.parse("good-540p-1-100%"), Coding("med", 50))
    with pytest.raises(ErosionError):
        ErosionPlanner([sf], {sf.label: 1e5})


def test_tree_rooted_at_golden(planner):
    golden_idx = next(i for i, sf in enumerate(planner.formats) if sf.golden)
    assert planner.parent[golden_idx] is None
    for i, sf in enumerate(planner.formats):
        chain = planner.chain(i)
        assert chain[0] == i
        assert chain[-1] == golden_idx
        # Parents are strictly richer along the chain (fallback keeps R1).
        for child, parent in zip(chain, chain[1:]):
            assert planner.formats[parent].fidelity.richer_equal(
                planner.formats[child].fidelity
            )


def test_relative_speed_formula_single_level(planner):
    """With one fallback level the general chain reduces to the paper's
    alpha / ((1-p) alpha + p)."""
    # Pick a non-golden format with demands.
    idx, sf = next(
        (i, sf) for i, sf in enumerate(planner.formats)
        if not sf.golden and sf.demands
    )
    demand = sf.demands[0]
    parent = planner.parent[idx]
    v0 = planner.effective_speed(demand, idx)
    v1 = planner.effective_speed(demand, parent)
    alpha = v1 / v0
    for p in (0.0, 0.3, 0.7, 1.0):
        got = planner.relative_speed(demand, idx, {idx: p})
        if planner.parent[parent] is None or p == 0.0:
            expected = alpha / ((1 - p) * alpha + p)
            assert got == pytest.approx(expected)


def test_relative_speed_bounds(planner):
    fractions = {i: 0.5 for i, sf in enumerate(planner.formats)
                 if not sf.golden}
    for demand, home in planner._consumers:
        rel = planner.relative_speed(demand, home, fractions)
        assert 0.0 < rel <= 1.0


def test_overall_speed_is_min(planner):
    fractions = {i: 0.4 for i, sf in enumerate(planner.formats)
                 if not sf.golden}
    overall = planner.overall_speed(fractions)
    rels = [planner.relative_speed(d, h, fractions)
            for d, h in planner._consumers]
    assert overall == pytest.approx(min(rels))


def test_pmin_reached_when_everything_eroded(planner):
    assert 0.0 < planner.pmin <= 1.0


def test_plan_without_budget_never_decays(planner):
    plan = planner.plan(None)
    assert plan.k == 0.0
    assert all(f == 0.0 for f in plan.fractions.values())
    assert all(s == pytest.approx(1.0) for s in plan.overall_speed.values())


def test_higher_k_erodes_more(planner):
    gentle = planner.plan_for_k(0.5)
    harsh = planner.plan_for_k(4.0)
    assert harsh.total_bytes <= gentle.total_bytes + 1e-6
    for age in range(1, 11):
        assert (harsh.overall_speed[age]
                <= gentle.overall_speed[age] + 0.05)


def test_fractions_accumulate_over_ages(planner):
    plan = planner.plan_for_k(3.0)
    for label in plan.labels:
        fractions = [plan.fractions[(age, label)] for age in range(1, 11)]
        assert fractions == sorted(fractions)


def test_golden_never_eroded(planner):
    plan = planner.plan_for_k(6.0)
    golden_label = next(sf.label for sf in planner.formats if sf.golden)
    for age in range(1, 11):
        assert plan.fractions[(age, golden_label)] == 0.0


def test_age_one_intact(planner):
    plan = planner.plan_for_k(5.0)
    for label in plan.labels:
        assert plan.fractions[(1, label)] == 0.0


def test_budget_binary_search_fits(planner):
    # Pick a budget strictly between the erosion floor (golden format plus
    # day-1 footage, which are never deleted) and the no-decay footprint.
    unbounded = planner.plan(None).total_bytes
    floor = planner.plan_for_k(16.0).total_bytes
    budget = floor + 0.5 * (unbounded - floor)
    plan = planner.plan(budget)
    assert plan.total_bytes <= budget
    assert plan.k > 0.0
    # The found k is close to minimal: slightly gentler decay overflows.
    if plan.k > 0.02:
        gentler = planner.plan_for_k(plan.k * 0.8)
        assert gentler.total_bytes > budget * 0.98


def test_infeasible_budget_raises(planner):
    with pytest.raises(ErosionError):
        planner.plan(1.0)  # one byte


def test_speed_targets_respected(planner):
    plan = planner.plan_for_k(2.0)
    for age in range(1, 11):
        target = power_law_target(age, 2.0, plan.pmin)
        # Achieved speed sits at or below target (deletion granularity),
        # but not absurdly below it.
        assert plan.overall_speed[age] <= target + 1e-6
        assert plan.overall_speed[age] >= plan.pmin - 1e-9


def test_deleted_fraction_map_keys(plan_and_rates, planner):
    plan_sf, _ = plan_and_rates
    plan = planner.plan_for_k(3.0)
    mapped = plan.deleted_fraction_map(plan_sf.formats)
    assert len(mapped) == 10 * len(plan_sf.formats)
    for (age, fmt), fraction in mapped.items():
        assert 1 <= age <= 10
        assert 0.0 <= fraction <= 1.0
