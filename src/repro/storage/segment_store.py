"""Segment store: the video index built on the key-value backend.

Keys are ``{stream}/{format-label}/{segment-index}``.  Each value is a small
JSON metadata record optionally followed by the segment payload.  The store
tracks per-(stream, format) footprints so storage-cost experiments can read
them off without scanning.

Store-level records live under the reserved ``__vstore__/`` key prefix
(stream names may not start with it); today that holds the committed
*format epoch*.  Online evolution writes re-encoded segments tagged with
the next epoch, commits the epoch only after every job finished, and any
segment tagged above the committed epoch is rolled back at open — so a
reopen after an interrupted migration never observes a half-materialized
format (see :meth:`SegmentStore.begin_epoch` / :meth:`commit_epoch`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union
from urllib.parse import quote, unquote

from repro.codec.encoder import EncodedSegment
from repro.errors import StorageError
from repro.storage.disk import DiskModel, DEFAULT_DISK
from repro.storage.kvstore import KVStore
from repro.storage.sharding import RebalanceReport, ShardedDiskArray, plan_rebalance
from repro.video.coding import Coding
from repro.video.fidelity import Fidelity
from repro.video.format import StorageFormat
from repro.video.segment import Segment

_SEPARATOR = b"\x00"

#: Reserved prefix for store-level metadata records.  Segment keys never
#: start with it (``put`` rejects such stream names), and every full-key
#: scan skips it.
_META_PREFIX = "__vstore__/"
_EPOCH_KEY = _META_PREFIX + "epoch"


@dataclass(frozen=True)
class StoredSegment:
    """Metadata of one stored segment, as returned by lookups."""

    stream: str
    index: int
    fmt: StorageFormat
    size_bytes: int
    n_frames: int
    activity: float
    seconds: float
    has_payload: bool
    shard: int = 0  # disk shard holding the segment (0 on unsharded stores)

    @property
    def segment(self) -> Segment:
        return Segment(self.stream, self.index, self.seconds)


# Keys are "/"-structured, the two format labels are " "-joined, and label
# text is arbitrary (sampling fractions contain "/"; future knob values may
# contain spaces or "|"), so label characters that collide with the key
# structure are percent-escaped with the stdlib codec, which roundtrips
# any label exactly.


def _escape_label(text: str) -> str:
    return quote(text, safe="")


def _unescape_label(text: str) -> str:
    return unquote(text)


def _fmt_key(fmt: StorageFormat) -> str:
    return (f"{_escape_label(fmt.fidelity.label)} "
            f"{_escape_label(fmt.coding.label)}")


def _parse_fmt(text: str) -> StorageFormat:
    if "|" in text:
        # Legacy stores encoded "/" as a literal "|" (the current encoding
        # never emits one — it escapes to %7C), so such keys can only come
        # from a store written before percent-escaping.  They are parsed
        # here and rewritten once at store open (_migrate_legacy_keys).
        text = text.replace("|", "%2F")
    fidelity_text, sep, coding_text = text.rpartition(" ")
    if not sep:
        raise StorageError(f"malformed format key: {text!r}")
    return StorageFormat(
        fidelity=Fidelity.parse(_unescape_label(fidelity_text)),
        coding=Coding.parse(_unescape_label(coding_text)),
    )


class SegmentStore:
    """Stores and retrieves per-format video segments.

    When a cache plane is attached (``self.cache``), every write and
    delete invalidates the affected segment's cached artifacts — decoded
    frames, memoized operator results, tier placement — so re-ingest and
    erosion can never leave stale cache state behind.
    """

    def __init__(self, kv: KVStore,
                 disk: Union[DiskModel, ShardedDiskArray] = DEFAULT_DISK):
        self.kv = kv
        self.disk = disk
        #: The sharded storage plane, when one backs this store.  A plain
        #: DiskModel keeps the pre-sharding single-spindle behavior.
        self.array: Optional[ShardedDiskArray] = (
            disk if isinstance(disk, ShardedDiskArray) else None
        )
        self.cache = None  # Optional[repro.cache.plane.CachePlane]
        self._footprint: Dict[Tuple[str, str], int] = {}
        self._count: Dict[Tuple[str, str], int] = {}
        self._migrate_legacy_keys()
        self._rollback_uncommitted()
        self._load_footprints()

    def _data_keys(self, prefix: str = "") -> List[str]:
        """All segment keys (skips the reserved ``__vstore__/`` records)."""
        return [key for key in self.kv.keys(prefix)
                if not key.startswith(_META_PREFIX)]

    def _invalidate_cache(self, stream: str, index: int) -> None:
        if self.cache is not None:
            self.cache.invalidate(stream, index)

    def _migrate_legacy_keys(self) -> None:
        """Rewrite keys from stores written before percent-escaping.

        The old encoding stored "/" in format labels as a literal "|";
        the current one never emits "|", so any key containing it in the
        format part is unambiguously legacy.  Rewriting once at open keeps
        every lookup (meta/get/contains/indices/delete/...) working on old
        stores without per-access compatibility paths.
        """
        legacy = [key for key in self._data_keys()
                  if "|" in self._split_key(key)[1]]
        for key in legacy:
            stream, fmt_text, index = self._split_key(key)
            new_key = self._key(stream, _parse_fmt(fmt_text), index)
            self.kv.put(new_key, self.kv.get(key))
            self.kv.delete(key)

    # -- format epochs (crash-safe online evolution) ----------------------------

    @property
    def committed_epoch(self) -> int:
        """The highest format epoch whose segments survive a reopen."""
        blob = self.kv.get_optional(_EPOCH_KEY)
        return 0 if blob is None else int(blob.decode("utf-8"))

    def begin_epoch(self) -> int:
        """The epoch an evolution job should tag its writes with.

        Nothing is persisted here — an interrupted job whose epoch never
        committed simply leaves segments above ``committed_epoch``, which
        the next open rolls back.
        """
        return self.committed_epoch + 1

    def commit_epoch(self, epoch: int) -> None:
        """Persist that every segment of ``epoch`` is complete (flushes).

        After this point a reopen keeps the epoch's segments; before it,
        they are rolled back as half-migrated.
        """
        if epoch < self.committed_epoch:
            raise StorageError(
                f"cannot commit epoch {epoch}: epoch "
                f"{self.committed_epoch} is already committed"
            )
        self.kv.put(_EPOCH_KEY, str(int(epoch)).encode("utf-8"))
        self.kv.flush()

    def _rollback_uncommitted(self) -> None:
        """Drop segments written under an epoch that never committed.

        An interrupted evolution run leaves a half-migrated format: some
        segments re-encoded at epoch N+1, the rest missing.  Serving such
        a format would silently violate the consumers' retrieval contract,
        so every segment tagged above the committed epoch is deleted at
        open — before footprints and shard placements are loaded, as if
        the aborted migration never happened.
        """
        committed = self.committed_epoch
        for key in self._data_keys():
            if self._read_meta(key).get("epoch", 0) > committed:
                self.kv.delete(key)

    def _load_footprints(self) -> None:
        for key in self._data_keys():
            stream, fmt_text, index = self._split_key(key)
            meta = self._read_meta(key)
            bucket = (stream, fmt_text)
            self._footprint[bucket] = (
                self._footprint.get(bucket, 0) + meta["size_bytes"]
            )
            self._count[bucket] = self._count.get(bucket, 0) + 1
            if self.array is not None:
                # Restore the persisted placement (pre-sharding stores
                # carry no shard field: everything lived on shard 0).
                replicas = meta.get("replicas")
                self.array.adopt(stream, fmt_text, index,
                                 meta.get("shard", 0), meta["size_bytes"],
                                 replicas=None if replicas is None
                                 else tuple(replicas))

    @staticmethod
    def _key_text(stream: str, fmt_text: str, index: int) -> str:
        """Assemble a key from an already-escaped format text."""
        return f"{stream}/{fmt_text}/{index:012d}"

    @staticmethod
    def _key(stream: str, fmt: StorageFormat, index: int) -> str:
        return SegmentStore._key_text(stream, _fmt_key(fmt), index)

    @staticmethod
    def _split_key(key: str) -> Tuple[str, str, int]:
        stream, fmt_text, index_text = key.rsplit("/", 2)
        return stream, fmt_text, int(index_text)

    def _read_meta(self, key: str) -> dict:
        blob = self.kv.get(key)
        head, _, _ = blob.partition(_SEPARATOR)
        return json.loads(head.decode("utf-8"))

    # -- writes -----------------------------------------------------------------

    def put(self, encoded: EncodedSegment, *, epoch: Optional[int] = None,
            charge: bool = True) -> None:
        """Store an encoded segment (metadata + optional payload).

        On a sharded store the placement policy assigns (or re-finds) the
        segment's shard; the write is charged to that shard and the shard
        id is persisted in the metadata record so placement survives
        reopen.

        Online evolution tags its writes with the in-flight format
        ``epoch`` (rolled back at open unless committed) and passes
        ``charge=False``: a background job's write time was already paid
        on the executor's channel pools, so charging the clock again here
        would double-count the I/O.
        """
        stream, index = encoded.segment.stream, encoded.segment.index
        if stream.startswith(_META_PREFIX.rstrip("/")):
            raise StorageError(
                f"stream name {stream!r} collides with the reserved "
                f"{_META_PREFIX!r} key prefix"
            )
        shard = 0
        replicas: Tuple[int, ...] = ()
        if self.array is not None:
            fmt_text = _fmt_key(encoded.fmt)
            shard = self.array.place(stream, fmt_text, index,
                                     encoded.size_bytes, encoded.activity)
            if self.array.replication > 1:
                replicas = self.array.replicas(stream, fmt_text, index)
        meta = {
            "size_bytes": encoded.size_bytes,
            "n_frames": encoded.n_frames,
            "activity": encoded.activity,
            "seconds": encoded.segment.seconds,
            "payload": encoded.payload is not None,
            "shard": shard,
        }
        if len(replicas) > 1:
            meta["replicas"] = list(replicas)
        if epoch is not None:
            meta["epoch"] = int(epoch)
        blob = json.dumps(meta).encode("utf-8") + _SEPARATOR
        if encoded.payload is not None:
            blob += encoded.payload
        key = self._key(stream, encoded.fmt, index)
        existed = key in self.kv
        self.kv.put(key, blob)
        if charge:
            if self.array is not None:
                # A replicated write pays every copy's spindle.
                for target in replicas or (shard,):
                    self.array.write_at(target, encoded.size_bytes)
            else:
                self.disk.write(encoded.size_bytes)
        self._invalidate_cache(encoded.segment.stream, encoded.segment.index)
        bucket = (encoded.segment.stream, _fmt_key(encoded.fmt))
        if existed:
            # Overwrite: footprint was already counted; recompute lazily.
            self._footprint[bucket] = self._recount_footprint(bucket)
            self._count[bucket] = sum(
                1 for _ in self.kv.keys(f"{bucket[0]}/{bucket[1]}/")
            )
        else:
            self._footprint[bucket] = self._footprint.get(bucket, 0) + encoded.size_bytes
            self._count[bucket] = self._count.get(bucket, 0) + 1

    def _recount_footprint(self, bucket: Tuple[str, str]) -> int:
        prefix = f"{bucket[0]}/{bucket[1]}/"
        return sum(self._read_meta(k)["size_bytes"] for k in self.kv.keys(prefix))

    # -- reads ------------------------------------------------------------------

    def _require(self, stream: str, fmt: StorageFormat, index: int) -> str:
        """The segment's key, or a StorageError naming what is missing.

        Guards every point lookup so a missing segment surfaces as a
        store-level error naming (stream, format, index) instead of
        leaking the KV backend's raw-key error.
        """
        key = self._key(stream, fmt, index)
        if key not in self.kv:
            raise StorageError(
                f"no stored segment: stream={stream!r} "
                f"format={fmt.label!r} index={index}"
            )
        return key

    def get(self, stream: str, fmt: StorageFormat, index: int) -> StoredSegment:
        """Fetch one segment's metadata, charging its shard for the bytes."""
        meta = self.meta(stream, fmt, index)
        if self.array is not None:
            self.array.read_at(meta.shard, meta.size_bytes)
        else:
            self.disk.read(meta.size_bytes)
        return meta

    def meta(self, stream: str, fmt: StorageFormat, index: int) -> StoredSegment:
        """Fetch one segment's metadata without charging any disk time.

        On a sharded store the reported shard is the array's *effective*
        assignment, not the raw persisted field — a store written on a
        wider array folds onto the current shard count at open, and the
        metadata record may still carry the out-of-range original.
        """
        key = self._require(stream, fmt, index)
        meta = self._read_meta(key)
        if self.array is not None:
            shard = self.shard_of(stream, fmt, index)
        else:
            shard = meta.get("shard", 0)
        return StoredSegment(
            stream=stream,
            index=index,
            fmt=fmt,
            size_bytes=meta["size_bytes"],
            n_frames=meta["n_frames"],
            activity=meta["activity"],
            seconds=meta["seconds"],
            has_payload=meta["payload"],
            shard=shard,
        )

    def contains(self, stream: str, fmt: StorageFormat, index: int) -> bool:
        return self._key(stream, fmt, index) in self.kv

    def payload(self, stream: str, fmt: StorageFormat, index: int) -> Optional[bytes]:
        """The raw payload bytes of a materialized segment, if present."""
        blob = self.kv.get(self._require(stream, fmt, index))
        _, _, body = blob.partition(_SEPARATOR)
        return body or None

    def indices(self, stream: str, fmt: StorageFormat) -> List[int]:
        """Sorted indices of stored segments for (stream, format)."""
        prefix = f"{stream}/{_fmt_key(fmt)}/"
        return [self._split_key(k)[2] for k in self.kv.keys(prefix)]

    def formats(self, stream: str) -> List[StorageFormat]:
        """All storage formats holding at least one segment of ``stream``."""
        seen = {}
        for key in self.kv.keys(f"{stream}/"):
            _, fmt_text, _ = self._split_key(key)
            seen.setdefault(fmt_text, _parse_fmt(fmt_text))
        return list(seen.values())

    def streams(self) -> List[str]:
        """Sorted stream names with at least one stored segment."""
        return sorted({stream for stream, _ in self._footprint})

    # -- deletes ------------------------------------------------------------------

    def delete(self, stream: str, fmt: StorageFormat, index: int) -> bool:
        """Delete one segment (erosion executes through this)."""
        key = self._key(stream, fmt, index)
        if key not in self.kv:
            return False
        size = self._read_meta(key)["size_bytes"]
        self.kv.delete(key)
        if self.array is not None:
            self.array.forget(stream, _fmt_key(fmt), index)
        self._invalidate_cache(stream, index)
        bucket = (stream, _fmt_key(fmt))
        remaining = self._count.get(bucket, 0) - 1
        if remaining <= 0:
            # Prune the emptied bucket: a long-lived store aging footage
            # away must not accumulate zero-byte accounting entries.
            self._footprint.pop(bucket, None)
            self._count.pop(bucket, None)
        else:
            self._footprint[bucket] = self._footprint.get(bucket, 0) - size
            self._count[bucket] = remaining
        return True

    # -- accounting -------------------------------------------------------------------

    def footprint(self, stream: str, fmt: Optional[StorageFormat] = None) -> int:
        """Stored bytes for a stream, optionally limited to one format."""
        if fmt is not None:
            return self._footprint.get((stream, _fmt_key(fmt)), 0)
        return sum(
            size for (s, _), size in self._footprint.items() if s == stream
        )

    def segment_count(self, stream: str, fmt: StorageFormat) -> int:
        return self._count.get((stream, _fmt_key(fmt)), 0)

    def total_bytes(self) -> int:
        """Stored bytes across all streams and formats."""
        return sum(self._footprint.values())

    # -- sharding ---------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return 1 if self.array is None else self.array.n_shards

    def shard_of(self, stream: str, fmt: StorageFormat, index: int) -> int:
        """The shard a segment's *reads* route to (0 on unsharded stores).

        On a healthy array this is the placed primary.  Under shard
        failures it is the fastest surviving replica, and a segment whose
        every replica was destroyed raises
        :class:`~repro.errors.ReplicaUnavailableError` — the data is gone.
        """
        if self.array is None:
            return 0
        shard = self.array.effective_read_shard(stream, _fmt_key(fmt), index)
        return 0 if shard is None else shard

    def disk_params_for(self, stream: str, fmt: StorageFormat,
                        index: int) -> Tuple[float, float]:
        """(read bandwidth, request overhead) serving one segment's reads.

        Routes through :meth:`shard_of`, so a degraded shard's factor is
        folded into the bandwidth and failed shards are bypassed.
        """
        if self.array is not None:
            return self.array.read_params_at(self.shard_of(stream, fmt, index))
        return self.disk.read_bandwidth, self.disk.request_overhead

    def commit_move(self, stream: str, fmt_text: str, index: int,
                    dst: int) -> None:
        """Reassign a segment's shard and persist it, without charging I/O.

        The background-migration path: a shard-migration job's read and
        write tasks already paid their time on the executor's channel
        pools, so when the write completes only the bookkeeping remains —
        the array's placement map and the metadata record's shard field.
        (:meth:`rebalance` is the foreground path that charges the clock
        itself.)
        """
        if self.array is None:
            return
        key = self._key_text(stream, fmt_text, index)
        blob = self.kv.get(key)
        head, _, body = blob.partition(_SEPARATOR)
        meta = json.loads(head.decode("utf-8"))
        self.array.reassign(stream, fmt_text, index, dst)
        meta["shard"] = dst
        if "replicas" in meta:
            meta["replicas"] = list(
                self.array.replicas(stream, fmt_text, index)
            )
        self.kv.put(key, json.dumps(meta).encode("utf-8") + _SEPARATOR + body)

    def commit_replica(self, stream: str, fmt_text: str, index: int,
                       shard: int) -> None:
        """Record a rebuilt replica and persist it, without charging I/O.

        The background re-replication path: a rebuild job's read and write
        tasks already paid their time on the executor's channel pools, so
        when the copy completes only the bookkeeping remains — the array's
        replica map and the metadata record's shard/replica fields.
        """
        if self.array is None:
            return
        self.array.add_replica(stream, fmt_text, index, shard)
        key = self._key_text(stream, fmt_text, index)
        blob = self.kv.get(key)
        head, _, body = blob.partition(_SEPARATOR)
        meta = json.loads(head.decode("utf-8"))
        replicas = self.array.replicas(stream, fmt_text, index)
        meta["shard"] = replicas[0]
        meta["replicas"] = list(replicas)
        self.kv.put(key, json.dumps(meta).encode("utf-8") + _SEPARATOR + body)

    def rebalance(self) -> RebalanceReport:
        """Move segments between shards until byte loads are balanced.

        Applies the greedy plan of
        :func:`~repro.storage.sharding.plan_rebalance`: each move charges
        the migration I/O (source read + destination write) to the clock
        and rewrites the segment's metadata record with its new shard, so
        the placement survives reopen.  Cached decoded frames and results
        stay valid — the bytes did not change, only their spindle.

        No-op (empty report) on unsharded and single-shard stores.
        """
        if self.array is None or self.array.n_shards <= 1:
            return RebalanceReport(
                moves=0, bytes_moved=0.0, seconds=0.0,
                imbalance_before=0.0, imbalance_after=0.0,
            )
        array = self.array
        before = array.byte_imbalance
        moves = plan_rebalance(array.assignments(), array.n_shards)
        seconds = 0.0
        bytes_moved = 0.0
        for (stream, fmt_text, index), src, dst in moves:
            if dst in array.replicas(stream, fmt_text, index):
                # Moving the primary onto a shard that already holds a
                # copy would collapse two replicas into one; skip it.
                continue
            key = self._key_text(stream, fmt_text, index)
            blob = self.kv.get(key)
            head, _, body = blob.partition(_SEPARATOR)
            meta = json.loads(head.decode("utf-8"))
            nbytes = meta["size_bytes"]
            seconds += array.migrate(src, dst, nbytes)
            array.reassign(stream, fmt_text, index, dst)
            meta["shard"] = dst
            self.kv.put(key, json.dumps(meta).encode("utf-8")
                        + _SEPARATOR + body)
            bytes_moved += nbytes
        return RebalanceReport(
            moves=len(moves), bytes_moved=bytes_moved, seconds=seconds,
            imbalance_before=before, imbalance_after=array.byte_imbalance,
        )
