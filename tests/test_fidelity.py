"""Fidelity knobs and the richer-than partial order (Table 1, Section 2.3)."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.errors import FidelityError, KnobError
from repro.video.fidelity import (
    CROP_FACTORS,
    Fidelity,
    QUALITIES,
    RESOLUTION_ORDER,
    RESOLUTIONS,
    SAMPLING_RATES,
    downgrades_of,
    fidelity_space,
    fidelity_space_size,
    knob_counts,
    knobwise_max,
    richest_fidelity,
)

fidelities = st.builds(
    Fidelity,
    quality=st.sampled_from(QUALITIES),
    resolution=st.sampled_from(RESOLUTION_ORDER),
    sampling=st.sampled_from(SAMPLING_RATES),
    crop=st.sampled_from(CROP_FACTORS),
)


def test_knob_domains_match_table1():
    counts = knob_counts()
    assert counts == {"quality": 4, "resolution": 10, "sampling": 5, "crop": 3}
    assert fidelity_space_size() == 600


def test_space_enumerates_exactly_once():
    space = list(fidelity_space())
    assert len(space) == 600
    assert len(set(space)) == 600


def test_illegal_knob_values_rejected():
    with pytest.raises(KnobError):
        Fidelity("great", "720p", Fraction(1), 1.0)
    with pytest.raises(KnobError):
        Fidelity("best", "480p", Fraction(1), 1.0)
    with pytest.raises(KnobError):
        Fidelity("best", "720p", Fraction(1, 3), 1.0)
    with pytest.raises(KnobError):
        Fidelity("best", "720p", Fraction(1), 0.9)


def test_pixels_monotone_in_resolution_order():
    pixel_counts = [RESOLUTIONS[r][0] * RESOLUTIONS[r][1] for r in RESOLUTION_ORDER]
    assert pixel_counts == sorted(pixel_counts)


def test_dimensions_apply_crop():
    f = Fidelity("best", "720p", Fraction(1), 0.5)
    assert f.dimensions == (640, 360)
    assert f.pixels == 640 * 360


def test_fps_follows_sampling():
    assert Fidelity("best", "720p", Fraction(1, 30), 1.0).fps == 1.0
    assert Fidelity("best", "720p", Fraction(1), 1.0).fps == 30.0


def test_label_round_trip():
    f = Fidelity("good", "540p", Fraction(1, 6), 0.75)
    assert f.label == "good-540p-1/6-75%"
    assert Fidelity.parse(f.label) == f


def test_parse_rejects_malformed():
    with pytest.raises(KnobError):
        Fidelity.parse("good-540p-1/6")
    with pytest.raises(KnobError):
        Fidelity.parse("good-540p-1/6-75")


def test_richest_is_ingest_format():
    top = richest_fidelity()
    assert top.label == "best-720p-1-100%"
    assert all(top.richer_equal(f) for f in fidelity_space())


def test_richer_than_strict_vs_equal():
    a = Fidelity("good", "540p", Fraction(1, 2), 1.0)
    b = Fidelity("good", "540p", Fraction(1, 6), 1.0)
    assert a.richer_than(b)
    assert a.richer_equal(a)
    assert not a.richer_than(a)


def test_incomparable_pair_from_paper():
    # good-50%-720p-1/2 vs bad-100%-540p-1 (Section 2.3).
    x = Fidelity("good", "720p", Fraction(1, 2), 0.5)
    y = Fidelity("bad", "540p", Fraction(1), 1.0)
    assert not x.richer_equal(y)
    assert not y.richer_equal(x)
    assert not x.comparable(y)


def test_degrade_to_enforces_r1():
    rich = Fidelity("best", "720p", Fraction(1), 1.0)
    poor = Fidelity("bad", "180p", Fraction(1, 30), 0.5)
    assert rich.degrade_to(poor) == poor
    with pytest.raises(FidelityError):
        poor.degrade_to(rich)


@given(fidelities, fidelities)
def test_partial_order_antisymmetry(a, b):
    if a.richer_equal(b) and b.richer_equal(a):
        assert a == b


@given(fidelities, fidelities, fidelities)
def test_partial_order_transitivity(a, b, c):
    if a.richer_equal(b) and b.richer_equal(c):
        assert a.richer_equal(c)


@given(fidelities, fidelities)
def test_knobwise_max_is_least_upper_bound(a, b):
    top = knobwise_max([a, b])
    assert top.richer_equal(a) and top.richer_equal(b)
    # No strictly poorer option is also an upper bound.
    for other in fidelity_space():
        if top.richer_than(other):
            assert not (other.richer_equal(a) and other.richer_equal(b))


@given(fidelities)
def test_knobwise_max_idempotent(a):
    assert knobwise_max([a, a]) == a


def test_knobwise_max_empty_rejected():
    with pytest.raises(FidelityError):
        knobwise_max([])


def test_downgrades_are_exactly_the_down_set():
    f = Fidelity("bad", "100p", Fraction(1, 6), 0.75)
    downs = downgrades_of(f)
    assert f in downs
    assert all(f.richer_equal(d) for d in downs)
    assert len(downs) == 2 * 2 * 2 * 2  # 2 poorer-or-equal values per knob
