"""Segment reader: streams stored video through decoder (or disk) to
consumers, charging retrieval costs to the simulated clock.

This is the execution path behind queries: for each requested segment the
reader fetches the stored version, decodes it (encoded formats) or reads
sampled frames (raw formats), and reports the video time covered and the
simulated seconds spent — from which effective retrieval speed follows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.plane import CachePlane, RetrievalAccess
from repro.clock import SimClock
from repro.codec.chunks import decoded_frame_count
from repro.codec.model import CodecModel, DEFAULT_CODEC
from repro.errors import StorageError
from repro.storage.segment_store import SegmentStore, StoredSegment  # noqa: F401
from repro.video.fidelity import Fidelity
from repro.video.format import StorageFormat


@dataclass(frozen=True)
class RetrievedClip:
    """Outcome of retrieving one segment for one consumer."""

    stored: StoredSegment
    consumer_fidelity: Fidelity
    n_frames: int  # frames delivered to the consumer
    retrieval_seconds: float  # simulated time spent retrieving


class SegmentReader:
    """Reads segments of one storage format for one consumer fidelity."""

    def __init__(
        self,
        store: SegmentStore,
        fmt: StorageFormat,
        consumer_fidelity: Fidelity,
        codec: CodecModel = DEFAULT_CODEC,
        clock: Optional[SimClock] = None,
        cache: Optional[CachePlane] = None,
    ):
        if not fmt.fidelity.richer_equal(consumer_fidelity):
            raise StorageError(
                f"storage format {fmt.label} cannot supply fidelity "
                f"{consumer_fidelity.label} (requirement R1)"
            )
        self.store = store
        self.fmt = fmt
        self.consumer_fidelity = consumer_fidelity
        self.codec = codec
        self.clock = clock or SimClock()
        self.cache = cache

    @property
    def category(self) -> str:
        """Clock category this reader's retrievals charge to."""
        return "disk" if self.fmt.is_raw else "decode"

    def assess(self, stream: str, index: int) -> RetrievedClip:
        """Compute one segment's retrieval outcome without charging time.

        The concurrent executor plans retrieval tasks with this and charges
        the clock itself when the simulated disk/decoder actually serves
        them; :meth:`read` is ``assess`` plus an immediate charge.
        """
        stride = self.codec.consumer_stride(
            self.fmt.fidelity, self.consumer_fidelity.sampling
        )
        meta = self.store.meta(stream, self.fmt, index)
        if self.fmt.is_raw:
            # Raw path: sampled frames can be read individually from disk
            # (Table 3 note 2); a full scan streams the segment sequentially.
            n_stored = max(1, meta.n_frames)
            consumed = len(range(0, n_stored, stride))
            frame_bytes = self.codec.raw_frame_bytes(self.fmt.fidelity)
            bandwidth, overhead = self._disk_params(stream, index)
            # Either scan the whole segment sequentially or read sampled
            # frames individually, whichever is cheaper (cf. DiskModel).
            scan = (n_stored * frame_bytes / bandwidth + overhead)
            sparse = (consumed * frame_bytes / bandwidth
                      + consumed * overhead)
            seconds = min(scan, sparse)
            return RetrievedClip(
                stored=meta,
                consumer_fidelity=self.consumer_fidelity,
                n_frames=consumed,
                retrieval_seconds=seconds,
            )

        n_decoded = decoded_frame_count(
            meta.n_frames, stride, self.fmt.coding.keyframe_interval
        )
        consumed = len(range(0, meta.n_frames, stride))
        seconds = n_decoded * self.codec.decode_frame_seconds(
            self.fmt.fidelity, self.fmt.coding
        )
        return RetrievedClip(
            stored=meta,
            consumer_fidelity=self.consumer_fidelity,
            n_frames=consumed,
            retrieval_seconds=seconds,
        )

    def assess_many(self, stream: str,
                    indices: Sequence[int]) -> List[RetrievedClip]:
        """Batch :meth:`assess`: one NumPy pass over per-segment arrays.

        ``QueryEngine.plan`` assesses every active segment of a stage at
        once; doing the cost arithmetic per segment in Python made plan
        assembly a per-segment interpreter loop.  This builds the frame
        counts and retrieval seconds as float64 arrays in one shot —
        elementwise, with the exact operation order of the scalar path, so
        the results are bit-identical (the parity test in
        ``tests/test_retrieval.py`` holds it to that).
        """
        if not indices:
            return []
        stride = self.codec.consumer_stride(
            self.fmt.fidelity, self.consumer_fidelity.sampling
        )
        metas = [self.store.meta(stream, self.fmt, i) for i in indices]
        n_frames = np.asarray([m.n_frames for m in metas], dtype=np.int64)
        if self.fmt.is_raw:
            n_stored = np.maximum(1, n_frames)
            consumed = -(-n_stored // stride)  # == len(range(0, n, stride))
            frame_bytes = self.codec.raw_frame_bytes(self.fmt.fidelity)
            params = [self._disk_params(stream, i) for i in indices]
            bandwidth = np.asarray([p[0] for p in params])
            overhead = np.asarray([p[1] for p in params])
            scan = n_stored * frame_bytes / bandwidth + overhead
            sparse = (consumed * frame_bytes / bandwidth
                      + consumed * overhead)
            seconds = np.minimum(scan, sparse)
        else:
            kf = self.fmt.coding.keyframe_interval
            # decoded_frame_count is exact integer accounting; segments
            # overwhelmingly share a frame count, so one evaluation per
            # distinct count covers the whole batch.
            per_count = {
                n: decoded_frame_count(n, stride, kf)
                for n in set(n_frames.tolist())
            }
            n_decoded = np.asarray(
                [per_count[n] for n in n_frames.tolist()], dtype=np.int64
            )
            consumed = -(-n_frames // stride)
            seconds = n_decoded * self.codec.decode_frame_seconds(
                self.fmt.fidelity, self.fmt.coding
            )
        return [
            RetrievedClip(
                stored=meta,
                consumer_fidelity=self.consumer_fidelity,
                n_frames=n,
                retrieval_seconds=s,
            )
            for meta, n, s in zip(metas, consumed.tolist(), seconds.tolist())
        ]

    def _disk_params(self, stream: str, index: int) -> Tuple[float, float]:
        """(bandwidth, request overhead) serving this segment's raw reads.

        On a sharded store these are the assigned shard's parameters (see
        :mod:`repro.storage.sharding`); hot segments promoted to the fast
        tier (:mod:`repro.cache.tiers`) stream at fast-tier bandwidth.
        """
        bandwidth, overhead = self.store.disk_params_for(
            stream, self.fmt, index
        )
        if self.cache is not None and self.cache.tiers is not None:
            return self.cache.tiers.read_params(
                stream, index, bandwidth, overhead,
            )
        return bandwidth, overhead

    def assess_cached(
        self, stream: str, index: int
    ) -> Tuple[RetrievedClip, Optional[RetrievalAccess]]:
        """Like :meth:`assess`, consulting the decoded-frame cache.

        On a (committed) cache hit the clip's retrieval cost becomes the
        RAM-tier cost; the returned :class:`RetrievalAccess` carries the
        key, both costs, and the entry size, so the executor can commit a
        miss when its retrieval task actually completes in simulated time
        — and deduplicate identical in-flight misses (single-flight).
        Without a cache plane this is exactly :meth:`assess`.
        """
        return self._with_access(stream, index, self.assess(stream, index))

    def assess_cached_many(
        self, stream: str, indices: Sequence[int]
    ) -> List[Tuple[RetrievedClip, Optional[RetrievalAccess]]]:
        """Batch :meth:`assess_cached` on top of :meth:`assess_many`.

        The cost arithmetic is the vectorized batch pass; the cache view
        (key construction, side-effect-free peek) goes through the same
        per-segment helper as the scalar path, so the two cannot drift.
        """
        clips = self.assess_many(stream, indices)
        return [
            self._with_access(stream, index, clip)
            for index, clip in zip(indices, clips)
        ]

    def _with_access(
        self, stream: str, index: int, retrieved: RetrievedClip
    ) -> Tuple[RetrievedClip, Optional[RetrievalAccess]]:
        """Attach the decoded-frame-cache view to one assessed clip."""
        if self.cache is None:
            return retrieved, None
        key = self.cache.frame_key(stream, index, self.fmt.label,
                                   self.consumer_fidelity.label)
        nbytes = (retrieved.n_frames
                  * self.codec.raw_frame_bytes(self.consumer_fidelity))
        # peek, not get: planning is side-effect-free — hit/miss counters
        # move when the retrieval is actually served on the clock.
        access = RetrievalAccess(
            key=key,
            hit=self.cache.frames.peek(key) is not None,
            full_seconds=retrieved.retrieval_seconds,
            hit_seconds=self.cache.hit_seconds(nbytes),
            nbytes=nbytes,
            stored_bytes=float(retrieved.stored.size_bytes),
            raw=self.fmt.is_raw,
        )
        if access.hit:
            retrieved = RetrievedClip(
                stored=retrieved.stored,
                consumer_fidelity=retrieved.consumer_fidelity,
                n_frames=retrieved.n_frames,
                retrieval_seconds=access.hit_seconds,
            )
        return retrieved, access

    def read(self, stream: str, index: int) -> RetrievedClip:
        """Retrieve one segment, charging decode or disk time.

        With a cache plane attached, a decoded-frame hit charges the RAM
        cost to the ``"cache"`` category instead, and a miss inserts the
        decoded frames for the next reader.
        """
        retrieved, access = self.assess_cached(stream, index)
        if access is None:
            self.clock.charge(retrieved.retrieval_seconds, self.category)
            return retrieved
        if not self.cache.serve_retrieval(self.clock, access):
            self.clock.charge(access.full_seconds, self.category)
        return retrieved

    def read_range(self, stream: str, indices: List[int]) -> Iterator[RetrievedClip]:
        """Stream a list of segments in order."""
        for index in indices:
            yield self.read(stream, index)
