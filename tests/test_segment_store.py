"""Segment store: per-format indexing and footprint accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.clock import SimClock
from repro.codec.encoder import Encoder
from repro.errors import StorageError
from repro.storage.disk import DiskModel
from repro.storage.kvstore import KVStore
from repro.storage.segment_store import (
    SegmentStore,
    _escape_label,
    _fmt_key,
    _parse_fmt,
    _unescape_label,
)
from repro.video.coding import Coding, RAW, coding_space
from repro.video.fidelity import Fidelity, fidelity_space
from repro.video.format import StorageFormat
from repro.video.segment import Segment

FMT_A = StorageFormat(Fidelity.parse("good-540p-1/6-100%"), Coding("fast", 10))
FMT_B = StorageFormat(Fidelity.parse("best-200p-1-100%"), RAW)


@pytest.fixture()
def store(tmp_path):
    kv = KVStore(str(tmp_path / "segments.log"))
    yield SegmentStore(kv, DiskModel(clock=SimClock()))
    kv.close()


def _encode(fmt, index, materialize=False):
    return Encoder(clock=SimClock()).encode(
        Segment("cam", index), fmt, activity=0.4, materialize=materialize
    )


def test_put_get_roundtrip(store):
    encoded = _encode(FMT_A, 0)
    store.put(encoded)
    got = store.get("cam", FMT_A, 0)
    assert got.size_bytes == encoded.size_bytes
    assert got.n_frames == encoded.n_frames
    assert got.fmt == FMT_A
    assert got.segment.t0 == 0.0


def test_get_charges_disk(store):
    store.put(_encode(FMT_A, 0))
    before = store.disk.clock.spent("disk")
    store.get("cam", FMT_A, 0)
    assert store.disk.clock.spent("disk") > before


def test_meta_does_not_charge_disk(store):
    store.put(_encode(FMT_A, 0))
    spent = store.disk.clock.spent("disk")
    store.meta("cam", FMT_A, 0)
    assert store.disk.clock.spent("disk") == spent


def test_indices_and_formats(store):
    for i in (0, 1, 5):
        store.put(_encode(FMT_A, i))
    store.put(_encode(FMT_B, 1))
    assert store.indices("cam", FMT_A) == [0, 1, 5]
    assert store.indices("cam", FMT_B) == [1]
    labels = sorted(f.label for f in store.formats("cam"))
    assert labels == sorted([FMT_A.label, FMT_B.label])


def test_footprint_accounting(store):
    a0, a1 = _encode(FMT_A, 0), _encode(FMT_A, 1)
    b0 = _encode(FMT_B, 0)
    for e in (a0, a1, b0):
        store.put(e)
    assert store.footprint("cam", FMT_A) == a0.size_bytes + a1.size_bytes
    assert store.footprint("cam", FMT_B) == b0.size_bytes
    assert store.footprint("cam") == store.total_bytes()
    assert store.segment_count("cam", FMT_A) == 2


def test_delete_updates_footprint(store):
    e = _encode(FMT_A, 0)
    store.put(e)
    assert store.delete("cam", FMT_A, 0)
    assert store.footprint("cam", FMT_A) == 0
    assert not store.delete("cam", FMT_A, 0)
    assert not store.contains("cam", FMT_A, 0)


def test_payload_roundtrip(store):
    e = _encode(FMT_B, 3, materialize=True)
    store.put(e)
    assert store.payload("cam", FMT_B, 3) == e.payload


def test_footprints_survive_reopen(tmp_path):
    path = str(tmp_path / "segments.log")
    kv = KVStore(path)
    store = SegmentStore(kv, DiskModel(clock=SimClock()))
    e = _encode(FMT_A, 0)
    store.put(e)
    kv.close()

    kv2 = KVStore(path)
    store2 = SegmentStore(kv2, DiskModel(clock=SimClock()))
    assert store2.footprint("cam", FMT_A) == e.size_bytes
    assert store2.indices("cam", FMT_A) == [0]
    kv2.close()


def test_overwrite_does_not_double_count(store):
    e = _encode(FMT_A, 0)
    store.put(e)
    store.put(e)
    assert store.footprint("cam", FMT_A) == e.size_bytes
    assert store.segment_count("cam", FMT_A) == 1


class TestMissingSegmentErrors:
    """Point lookups on absent segments raise a StorageError that names
    (stream, format, index) — never the KV backend's raw-key error."""

    @pytest.mark.parametrize("lookup", ["meta", "get", "payload"])
    def test_missing_segment_names_the_lookup(self, store, lookup):
        with pytest.raises(StorageError) as err:
            getattr(store, lookup)("nocam", FMT_A, 17)
        message = str(err.value)
        assert "nocam" in message
        assert FMT_A.label in message
        assert "17" in message
        assert "key not found" not in message  # the backend error text

    def test_missing_index_of_present_format_also_named(self, store):
        store.put(_encode(FMT_A, 0))
        with pytest.raises(StorageError) as err:
            store.meta("cam", FMT_A, 5)
        assert "index=5" in str(err.value)


class TestBucketPruning:
    """Deleting the last segment of a (stream, format) removes its
    accounting bucket instead of leaving a zero-byte entry behind."""

    def test_delete_prunes_empty_buckets(self, store):
        store.put(_encode(FMT_A, 0))
        store.put(_encode(FMT_A, 1))
        store.put(_encode(FMT_B, 0))
        store.delete("cam", FMT_A, 0)
        assert len(store._footprint) == 2  # bucket still half full
        store.delete("cam", FMT_A, 1)
        assert len(store._footprint) == 1  # FMT_A bucket gone, not zeroed
        assert len(store._count) == 1
        assert store.footprint("cam", FMT_A) == 0
        assert store.segment_count("cam", FMT_A) == 0
        store.delete("cam", FMT_B, 0)
        assert store._footprint == {}
        assert store._count == {}
        assert store.total_bytes() == 0

    def test_reingest_after_prune_counts_fresh(self, store):
        e = _encode(FMT_A, 0)
        store.put(e)
        store.delete("cam", FMT_A, 0)
        store.put(e)
        assert store.footprint("cam", FMT_A) == e.size_bytes
        assert store.segment_count("cam", FMT_A) == 1


class TestFormatKeyRoundtrip:
    """The _fmt_key/_parse_fmt encoding must roundtrip every format."""

    def test_all_fidelity_coding_combinations_roundtrip(self):
        """Property over the full space: 600 fidelities x 26 codings."""
        codings = list(coding_space())
        for fidelity in fidelity_space():
            for coding in codings:
                fmt = StorageFormat(fidelity, coding)
                key = _fmt_key(fmt)
                assert "/" not in key, key  # keys are "/"-structured
                assert _parse_fmt(key) == fmt

    @given(st.text(alphabet=st.sampled_from(" |/%-abc025"), max_size=30))
    def test_escaping_roundtrips_hostile_labels(self, label):
        """Labels containing spaces, '|', '/' or '%' roundtrip exactly."""
        escaped = _escape_label(label)
        assert "/" not in escaped
        assert " " not in escaped
        assert "|" not in escaped
        assert _unescape_label(escaped) == label

    @given(
        a=st.text(alphabet=st.sampled_from(" |/%-ab1"), max_size=12),
        b=st.text(alphabet=st.sampled_from(" |/%-ab1"), max_size=12),
    )
    def test_escaping_is_injective(self, a, b):
        if a != b:
            assert _escape_label(a) != _escape_label(b)

    def test_malformed_key_rejected(self):
        with pytest.raises(StorageError):
            _parse_fmt("no-space-separator")

    def test_legacy_pipe_encoded_keys_still_parse(self):
        """Stores written before percent-escaping encoded '/' as '|'; the
        current encoding never emits a literal '|', so such keys are
        unambiguous and must keep reading."""
        for fmt in (FMT_A, FMT_B,
                    StorageFormat(Fidelity.parse("best-720p-1/2-75%"),
                                  Coding("slowest", 250))):
            legacy_key = fmt.label.replace("/", "|")
            assert _parse_fmt(legacy_key) == fmt

    def test_legacy_store_migrates_and_stays_fully_readable(self, tmp_path):
        """Opening a store written with the old '|' key encoding rewrites
        its keys once, so every lookup — not just format listing — works."""
        import json

        encoded = _encode(FMT_A, 3)
        meta = {"size_bytes": encoded.size_bytes,
                "n_frames": encoded.n_frames,
                "activity": encoded.activity,
                "seconds": encoded.segment.seconds,
                "payload": False}
        legacy_key = f"cam/{FMT_A.label.replace('/', '|')}/{3:012d}"
        assert "|" in legacy_key  # FMT_A's sampling fraction contains '/'

        path = str(tmp_path / "legacy.log")
        kv = KVStore(path)
        kv.put(legacy_key, json.dumps(meta).encode("utf-8") + b"\x00")
        kv.close()

        kv = KVStore(path)
        store = SegmentStore(kv, DiskModel(clock=SimClock()))
        assert all("|" not in key for key in kv.keys())
        assert store.contains("cam", FMT_A, 3)
        assert store.meta("cam", FMT_A, 3).size_bytes == encoded.size_bytes
        assert store.indices("cam", FMT_A) == [3]
        assert store.footprint("cam", FMT_A) == encoded.size_bytes
        assert store.segment_count("cam", FMT_A) == 1
        assert [f.label for f in store.formats("cam")] == [FMT_A.label]
        assert store.delete("cam", FMT_A, 3)
        kv.close()

    def test_raw_and_sampled_formats_store_and_list(self, store):
        """End to end through the store: a RAW format and a '/'-sampled
        fidelity coexist and are listed back as the exact same formats."""
        store.put(_encode(FMT_A, 0))
        store.put(_encode(FMT_B, 0))
        assert sorted(f.label for f in store.formats("cam")) == sorted(
            [FMT_A.label, FMT_B.label]
        )
