"""Command-line interface: ``python -m repro <command>``.

Commands cover the common operator workflows:

* ``configure`` — run the backward derivation and print the Table-3-style
  configuration;
* ``query`` — estimate end-to-end speed for a benchmark query;
* ``ingest`` — transcode a stream's segments into an on-disk store;
* ``execute`` — actually run a query over stored segments;
* ``datasets`` — list the built-in benchmark streams;
* ``evolve`` — run the two-phase query-mix drift scenario and report
  retrieval cost against frozen and oracle plans (``--online`` adds the
  live evolution arm);
* ``focus`` — evaluate the Section-7 Focus comparison model;
* ``bench-diff`` — compare two BENCH.json runs and gate on throughput
  regressions;
* ``trace`` — run a traced concurrent fleet and print its critical-path
  summary (``trace``) or export the full observability bundle — Chrome
  trace JSON plus columnar analytics tables (``trace export``);
* ``metrics`` — run a fleet and print the always-on metrics registry.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.cache import format_cache_table
from repro.analysis.focus import FocusComparison
from repro.analysis.sharding import format_sharding_table
from repro.analysis.tables import (
    format_configuration_table,
    format_erosion_table,
)
from repro.cache import CacheConfig, POLICIES, TierConfig
from repro.core.store import VStore
from repro.storage.sharding import PLACEMENTS
from repro.ingest.budget import IngestBudget
from repro.operators.library import TABLE2_ORDER, default_library
from repro.units import DAY, TB, fmt_bytes
from repro.video.datasets import DATASETS


def _cache_config(args: argparse.Namespace) -> "CacheConfig | None":
    cache_mb = getattr(args, "cache_mb", None)
    if cache_mb is None:
        # The other cache flags are meaningless without a budget; failing
        # beats silently running uncached.
        if getattr(args, "tiering", False):
            raise SystemExit("--tiering requires --cache-mb")
        if getattr(args, "cache_policy", None) is not None:
            raise SystemExit("--cache-policy requires --cache-mb")
        return None
    if cache_mb <= 0:
        raise SystemExit("--cache-mb must be positive")
    from repro.units import MB

    return CacheConfig(
        frame_capacity_bytes=cache_mb * MB,
        result_capacity_bytes=max(1.0, cache_mb / 4.0) * MB,
        policy=getattr(args, "cache_policy", None) or "lru",
        tiering=TierConfig() if getattr(args, "tiering", False) else None,
    )


def _build_store(args: argparse.Namespace) -> VStore:
    names = tuple(args.operators.split(",")) if args.operators else TABLE2_ORDER
    library = default_library(names=names)
    budget = IngestBudget(args.ingest_cores)
    storage = None if args.storage_budget_tb is None else (
        args.storage_budget_tb * TB
    )
    if args.shards < 1:
        raise SystemExit("--shards must be at least 1")
    if args.replication < 1 or args.replication > args.shards:
        raise SystemExit("--replication must be between 1 and --shards")
    return VStore(
        workdir=getattr(args, "workdir", None),
        library=library,
        ingest_budget=budget,
        storage_budget_bytes=storage,
        lifespan_days=args.lifespan_days,
        cache_config=_cache_config(args),
        shards=args.shards,
        placement=args.placement,
        replication=args.replication,
    )


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--operators",
        default="Diff,S-NN,NN,Motion,License,OCR",
        help="comma-separated operator names (default: the six benchmark "
             "operators; empty for the full Table-2 library)",
    )
    parser.add_argument("--ingest-cores", type=float, default=None,
                        help="transcode-core budget per stream")
    parser.add_argument("--storage-budget-tb", type=float, default=None,
                        help="storage budget in TB (enables erosion)")
    parser.add_argument("--lifespan-days", type=int, default=10)
    parser.add_argument("--shards", type=int, default=1,
                        help="number of independent disk shards (1 keeps "
                             "the single-disk behavior)")
    parser.add_argument("--placement", choices=sorted(PLACEMENTS),
                        default="hash",
                        help="shard placement policy (default: hash; only "
                             "meaningful with --shards > 1)")
    parser.add_argument("--replication", type=int, default=1,
                        help="replicas per segment on distinct shards "
                             "(default: 1 = unreplicated; k > 1 survives "
                             "k-1 concurrent shard failures)")


def cmd_configure(args: argparse.Namespace) -> int:
    store = _build_store(args)
    config = store.configure()
    print(format_configuration_table(config))
    print()
    rate = config.plan.storage_bytes_per_second
    print(f"ingest cost:  {config.plan.ingest_cores:.2f} cores/stream")
    print(f"storage cost: {fmt_bytes(rate)}/s ({fmt_bytes(rate * DAY)}/day)")
    print(f"profiling:    {config.stats.operator_runs} operator runs, "
          f"{config.stats.coding_runs} coding runs, "
          f"{config.stats.total_seconds:.0f} s simulated")
    if args.storage_budget_tb is not None:
        print()
        print(format_erosion_table(config))
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    store = _build_store(args)
    store.configure()
    report = store.query(args.query, dataset=args.dataset,
                         accuracy=args.accuracy, duration=args.duration)
    print(f"query {report.query} on {args.dataset} at accuracy "
          f"{args.accuracy}: {report.speed:.1f}x realtime")
    for stage in report.stages:
        print(f"  {stage.operator:>8}: {stage.fidelity.label:>24} "
              f"covers {stage.coverage * 100:5.1f}%  "
              f"effective {stage.effective_speed:10.1f}x")
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    store = _build_store(args)
    with store:
        store.configure()
        store.ingest(args.dataset, n_segments=args.segments)
        total = store.segments.total_bytes()
        print(f"ingested {args.segments} segments of {args.dataset} into "
              f"{len(store.configuration.storage_formats)} formats "
              f"({fmt_bytes(total)} on disk)")
        if store.n_shards > 1:
            print()
            print(format_sharding_table(store.sharding_report()))
    return 0


def cmd_execute(args: argparse.Namespace) -> int:
    store = _build_store(args)
    with store:
        store.configure()
        for run in range(max(1, args.repeat)):
            result = store.execute(args.query, dataset=args.dataset,
                                   accuracy=args.accuracy,
                                   t0=args.t0, t1=args.t1, core=args.core,
                                   trace=args.trace)
            tag = "" if args.repeat <= 1 else f" (run {run + 1})"
            print(f"executed query {result.query} over "
                  f"{result.video_seconds:.0f}s of {args.dataset}: "
                  f"{result.speed:.1f}x realtime{tag}")
        for op, n in result.segments_per_stage.items():
            print(f"  {op:>8}: {n} segments, "
                  f"{result.positives_per_stage[op]} positives")
        if store.cache is not None:
            print()
            print(format_cache_table(store.cache_stats()))
        if store.n_shards > 1:
            print()
            print(format_sharding_table(store.sharding_report()))
    return 0


def cmd_evolve(args: argparse.Namespace) -> int:
    from repro.analysis.drift import drift_regret_report, format_drift_table

    if args.phase2_queries <= args.detection_queries + 2:
        raise SystemExit("--phase2-queries must exceed --detection-queries "
                         "by at least 3")
    report = drift_regret_report(
        online=args.online,
        dataset=args.dataset,
        n_segments=args.segments,
        phase2_queries=args.phase2_queries,
        detection_queries=args.detection_queries,
        workdir=getattr(args, "workdir", None),
    )
    print(format_drift_table(report))
    return 0


def cmd_bench_diff(args: argparse.Namespace) -> int:
    from repro.analysis.bench import diff_bench, format_bench_diff, load_bench

    if not 0.0 <= args.tolerance < 1.0:
        raise SystemExit("--tolerance must be in [0, 1)")
    try:
        old = load_bench(args.old)
        new = load_bench(args.new)
    except (OSError, ValueError, KeyError) as exc:
        raise SystemExit(f"bench-diff: {exc}")
    diff = diff_bench(old, new, tolerance=args.tolerance)
    print(format_bench_diff(diff))
    return 0 if diff.ok else 1


def _run_observed_fleet(store: VStore, args: argparse.Namespace) -> None:
    """Run the requested homogeneous fleet with tracing forced on."""
    if args.queries < 1:
        raise SystemExit("--queries must be at least 1")
    spec = {"query": args.query, "dataset": args.dataset,
            "accuracy": args.accuracy, "t0": args.t0, "t1": args.t1}
    store.execute_many([dict(spec) for _ in range(args.queries)],
                       core=args.core, trace=True)


def cmd_trace(args: argparse.Namespace) -> int:
    store = _build_store(args)
    with store:
        store.configure()
        _run_observed_fleet(store, args)
        obs = store.observability()
        if args.action == "export":
            written = obs.export(args.outdir, bench_path=args.bench)
            for name in sorted(written):
                print(f"{name:>14}: {written[name]}")
        else:
            print(obs.summary())
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    from repro.analysis.obs import format_metrics_table

    store = _build_store(args)
    with store:
        store.configure()
        _run_observed_fleet(store, args)
        print(format_metrics_table(store.metrics.snapshot()))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.analysis.slo import format_slo_table
    from repro.query.scheduler import (
        AdmissionConfig,
        DeadlinePolicy,
        FairSharePolicy,
        FIFOPolicy,
        WeightedFairSharePolicy,
    )
    from repro.query.workload import ArrivalSpec, QueryMixEntry, TenantSpec

    if args.tenants < 1:
        raise SystemExit("--tenants must be at least 1")
    if args.horizon <= 0:
        raise SystemExit("--horizon must be positive")
    mix = (QueryMixEntry(query=args.query, dataset=args.dataset,
                         accuracy=args.accuracy, t0=args.t0, t1=args.t1),)
    tenants = [
        TenantSpec(name=f"tenant{i}",
                   arrivals=ArrivalSpec(kind=args.arrival, rate=args.rate),
                   mix=mix, slo_seconds=args.slo)
        for i in range(args.tenants)
    ]
    admission = None
    if args.max_in_flight is not None:
        admission = AdmissionConfig(max_in_flight=args.max_in_flight,
                                    queue_policy=args.queue_policy)
    policies = {"fifo": FIFOPolicy, "fair": FairSharePolicy,
                "edf": DeadlinePolicy, "wfair": WeightedFairSharePolicy}
    store = _build_store(args)
    with store:
        store.configure()
        report = store.serve(tenants, horizon=args.horizon, seed=args.seed,
                             admission=admission, failures=args.failures,
                             policy=policies[args.policy](), core=args.core)
        print(format_slo_table(report.slo))
        if report.availability is not None:
            from repro.analysis.availability import format_availability_table

            print()
            print(format_availability_table(report.availability))
        stats = report.stats
        print(f"executor [{stats.core}]: {stats.events} events in "
              f"{stats.total_wall_seconds:.3f}s real "
              f"({stats.events_per_second:,.0f} events/s)")
    return 0


def cmd_datasets(args: argparse.Namespace) -> int:
    for name, ds in DATASETS.items():
        print(f"{name:>9} [{ds.kind}] {ds.description}")
    return 0


def cmd_focus(args: argparse.Namespace) -> int:
    model = FocusComparison(alpha=args.alpha)
    r = model.query_delay_ratio(args.selectivity)
    print(f"selectivity {args.selectivity:.2%}: VStore/Focus query delay "
          f"ratio r = {r:.2f}")
    print(f"ingest hardware: Focus costs {model.ingest_cost_ratio():.1f}x "
          f"VStore per stream")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VStore: a data store for analytics on large videos "
                    "(EuroSys'19 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("configure", help="derive and print a configuration")
    _add_store_arguments(p)
    p.set_defaults(func=cmd_configure)

    p = sub.add_parser("query", help="estimate a query's speed")
    _add_store_arguments(p)
    p.add_argument("query", choices=("A", "B"))
    p.add_argument("--dataset", default="jackson", choices=sorted(DATASETS))
    p.add_argument("--accuracy", type=float, default=0.9)
    p.add_argument("--duration", type=float, default=3600.0)
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("ingest", help="ingest segments into a workdir store")
    _add_store_arguments(p)
    p.add_argument("--workdir", required=True)
    p.add_argument("--dataset", default="jackson", choices=sorted(DATASETS))
    p.add_argument("--segments", type=int, default=8)
    p.set_defaults(func=cmd_ingest)

    p = sub.add_parser("execute", help="run a query over stored segments")
    _add_store_arguments(p)
    p.add_argument("query", choices=("A", "B"))
    p.add_argument("--workdir", required=True)
    p.add_argument("--dataset", default="jackson", choices=sorted(DATASETS))
    p.add_argument("--accuracy", type=float, default=0.9)
    p.add_argument("--t0", type=float, default=0.0)
    p.add_argument("--t1", type=float, default=64.0)
    p.add_argument("--cache-mb", type=float, default=None,
                   help="enable the tiered retrieval cache with this many "
                        "MB of decoded-frame capacity")
    p.add_argument("--cache-policy", choices=sorted(POLICIES), default=None,
                   help="eviction policy of the cache tiers (default: lru; "
                        "requires --cache-mb)")
    p.add_argument("--tiering", action="store_true",
                   help="enable hot-segment promotion to a fast disk tier")
    p.add_argument("--repeat", type=int, default=1,
                   help="run the query this many times (shows warm-cache "
                        "speedup with --cache-mb)")
    p.add_argument("--core", choices=("heap", "reference"), default="heap",
                   help="executor core: the O(log n) event-heap engine "
                        "(default) or the legacy reference loop — results "
                        "are bit-identical, only wall-clock differs")
    p.add_argument("--trace", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="force per-event trace recording on (--trace) or "
                        "off (--no-trace); default records only for fleets "
                        "of up to 64 queries")
    p.set_defaults(func=cmd_execute)

    p = sub.add_parser(
        "evolve",
        help="two-phase drift scenario: frozen vs oracle retrieval cost, "
             "optionally with the online-evolution arm",
    )
    p.add_argument("--online", action="store_true",
                   help="run the online-evolution arm: detect drift, "
                        "re-plan incrementally, and materialize new "
                        "formats with background jobs contending with "
                        "foreground queries")
    p.add_argument("--dataset", default="jackson", choices=sorted(DATASETS))
    p.add_argument("--segments", type=int, default=4)
    p.add_argument("--phase2-queries", type=int, default=20)
    p.add_argument("--detection-queries", type=int, default=4,
                   help="phase-2 queries the drift detector observes at "
                        "frozen-plan cost before evolution triggers")
    p.add_argument("--workdir", default=None,
                   help="host the three per-arm stores here (default: a "
                        "cleaned-up temporary directory)")
    p.set_defaults(func=cmd_evolve)

    p = sub.add_parser(
        "serve",
        help="serve an open-loop multi-tenant workload with SLO-aware "
             "admission; print latency quantiles, miss rates and fairness",
    )
    _add_store_arguments(p)
    p.add_argument("--workdir", required=True,
                   help="store with previously ingested segments "
                        "(see the ingest command)")
    p.add_argument("--query", choices=("A", "B"), default="B")
    p.add_argument("--dataset", default="jackson", choices=sorted(DATASETS))
    p.add_argument("--accuracy", type=float, default=0.9)
    p.add_argument("--t0", type=float, default=0.0)
    p.add_argument("--t1", type=float, default=16.0)
    p.add_argument("--tenants", type=int, default=2,
                   help="identical tenants sharing the store (default: 2)")
    p.add_argument("--arrival", choices=("poisson", "bursty", "diurnal"),
                   default="poisson",
                   help="arrival process per tenant (default: poisson)")
    p.add_argument("--rate", type=float, default=0.5,
                   help="mean arrivals per simulated second per tenant")
    p.add_argument("--horizon", type=float, default=120.0,
                   help="simulated seconds of arrivals (default: 120)")
    p.add_argument("--slo", type=float, default=None,
                   help="per-tenant SLO in simulated seconds; each query's "
                        "deadline is its arrival + SLO")
    p.add_argument("--max-in-flight", type=int, default=None,
                   help="admission control: bound on concurrently running "
                        "queries (default: unbounded, no admission queue)")
    p.add_argument("--queue-policy", choices=("arrival", "edf", "wfair"),
                   default="arrival",
                   help="admission-queue order (requires --max-in-flight)")
    p.add_argument("--failures", default=None,
                   help="failure campaign on the workload timeline, e.g. "
                        "'fail@10:0,degrade@10:1:8,recover@60:0' "
                        "(action@t:shard[:factor]); prints an availability "
                        "report alongside the SLO table")
    p.add_argument("--policy", choices=("fifo", "fair", "edf", "wfair"),
                   default="fifo",
                   help="resource scheduling policy inside the executor")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--core", choices=("heap", "reference"), default="heap")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("datasets", help="list the benchmark streams")
    p.set_defaults(func=cmd_datasets)

    p = sub.add_parser("focus", help="Section-7 Focus comparison model")
    p.add_argument("--selectivity", type=float, default=0.10)
    p.add_argument("--alpha", type=float, default=1 / 48)
    p.set_defaults(func=cmd_focus)

    for name, help_text in (
        ("trace", "run a traced fleet; print its critical-path summary or "
                  "export the observability bundle (trace export)"),
        ("metrics", "run a fleet and print the always-on metrics registry"),
    ):
        p = sub.add_parser(name, help=help_text)
        _add_store_arguments(p)
        if name == "trace":
            p.add_argument("action", nargs="?", choices=("summary", "export"),
                           default="summary",
                           help="summary (default) prints critical-path, "
                                "queue-depth and metrics tables; export "
                                "writes chrome_trace.json plus the columnar "
                                "analytics tables into --outdir")
        p.add_argument("--query", choices=("A", "B"), default="A")
        p.add_argument("--workdir", required=True,
                       help="store with previously ingested segments "
                            "(see the ingest command)")
        p.add_argument("--dataset", default="jackson",
                       choices=sorted(DATASETS))
        p.add_argument("--accuracy", type=float, default=0.9)
        p.add_argument("--t0", type=float, default=0.0)
        p.add_argument("--t1", type=float, default=64.0)
        p.add_argument("--queries", type=int, default=4,
                       help="fleet width: how many copies of the query run "
                            "concurrently (default: 4)")
        p.add_argument("--core", choices=("heap", "reference"),
                       default="heap")
        if name == "trace":
            p.add_argument("--outdir", default="obs_out",
                           help="directory the export bundle is written "
                                "into (default: obs_out)")
            p.add_argument("--bench", default=None,
                           help="also flatten this BENCH.json into a "
                                "bench_history analytics table")
            p.set_defaults(func=cmd_trace)
        else:
            p.set_defaults(func=cmd_metrics)

    p = sub.add_parser(
        "bench-diff",
        help="compare two BENCH.json runs; exit 1 on throughput regression",
    )
    p.add_argument("old", help="baseline BENCH.json (e.g. the committed "
                               "benchmarks/BENCH_BASELINE.json)")
    p.add_argument("new", help="fresh BENCH.json to compare against it")
    p.add_argument("--tolerance", type=float, default=0.30,
                   help="allowed fractional events/s drop before a cell "
                        "counts as a regression (default: 0.30)")
    p.set_defaults(func=cmd_bench_diff)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
