"""Ablation: max-min-fair erosion planning vs naive uniform deletion.

VStore erodes the format that least harms the currently slowest consumer
(Section 4.4).  The obvious alternative — deleting the same fraction from
every non-golden format — frees the same storage while hurting the
max-min overall speed more, which is exactly the design point this
ablation quantifies.
"""

import pytest

from repro.core.coalesce import StorageFormatPlanner
from repro.core.consumption import ConsumptionPlanner
from repro.core.erosion import ErosionPlanner
from repro.operators.library import Consumer
from repro.profiler.coding_profiler import CodingProfiler
from repro.profiler.profiler import OperatorProfiler
from repro.units import DAY


@pytest.fixture(scope="module")
def planner(full_library):
    consumption = ConsumptionPlanner(OperatorProfiler(full_library, "dashcam"))
    decisions = consumption.derive_all(
        [Consumer(op, acc)
         for op in ("Motion", "License", "OCR")
         for acc in (0.95, 0.9, 0.8, 0.7)]
    )
    profiler = CodingProfiler(activity=0.6)
    plan = StorageFormatPlanner(profiler).heuristic_coalesce(decisions)
    rates = {sf.label: profiler.profile(sf.fmt).bytes_per_second
             for sf in plan.formats}
    return ErosionPlanner(plan.formats, rates, lifespan_days=10)


def _uniform_overall_speed(planner, uniform_fraction):
    fractions = {
        i: uniform_fraction
        for i, sf in enumerate(planner.formats) if not sf.golden
    }
    return planner.overall_speed(fractions), fractions


def _bytes_freed(planner, fractions):
    return sum(
        planner.bytes_per_second.get(sf.label, 0.0) * DAY
        * fractions.get(i, 0.0)
        for i, sf in enumerate(planner.formats)
    )


def test_fair_erosion_beats_uniform_deletion(benchmark, record, planner):
    def compare():
        rows = []
        for uniform in (0.2, 0.5, 0.8):
            naive_speed, naive_fracs = _uniform_overall_speed(planner, uniform)
            freed = _bytes_freed(planner, naive_fracs)
            # Ask the fair planner to free at least as many bytes.
            fair = planner._erode_age({}, naive_speed)
            # _erode_age stops exactly at the speed target; measure how many
            # bytes it freed while achieving the same overall speed.
            fair_freed = _bytes_freed(planner, fair)
            rows.append((uniform, naive_speed, freed, fair_freed))
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    lines = [f"{'uniform p':>10} {'overall speed':>14} "
             f"{'GB freed (naive)':>17} {'GB freed (fair)':>16}"]
    for uniform, speed, freed, fair_freed in rows:
        lines.append(f"{uniform:>10.1f} {speed:>14.4f} "
                     f"{freed / 2**30:>17.1f} {fair_freed / 2**30:>16.1f}")
    record("Ablation — fair vs uniform erosion", "\n".join(lines))

    # At the same overall-speed level, the fair planner frees at least as
    # much storage as uniform deletion (it concentrates deletions on the
    # formats whose consumers tolerate fallback best).
    for _, _, freed, fair_freed in rows:
        assert fair_freed >= freed * 0.99


def test_fair_erosion_spreads_decay(benchmark, record, planner):
    """Max-min fairness: after planning, no consumer is dramatically worse
    off than the overall speed (the definition of the metric)."""
    plan = benchmark.pedantic(lambda: planner.plan_for_k(1.0),
                              rounds=1, iterations=1)
    by_label = {sf.label: i for i, sf in enumerate(planner.formats)}
    for age in (5, 10):
        fractions = {
            by_label[label]: plan.fractions[(age, label)]
            for label in plan.labels
        }
        overall = planner.overall_speed(fractions)
        rels = [planner.relative_speed(d, h, fractions)
                for d, h in planner._consumers]
        assert min(rels) == pytest.approx(overall)
        record("Ablation — per-consumer relative speeds",
               f"age {age}: overall={overall:.3f} "
               f"spread=[{min(rels):.3f}, {max(rels):.3f}]")
