"""The typed trace-event model: one schema, one constructor, three cores.

Before this module, each executor core hand-rolled its own ``{"event":
..., "t": ...}`` dict — three copies of an implicit schema whose only
guarantee was the golden-trace files happening to agree.  Now the schema
is *locked* here:

* :data:`TRACE_SCHEMA` is the exact key-set of every task lifecycle
  event; :func:`task_event` is the one constructor all three cores
  (reference rescan loop, event-heap core, vectorized fast path) call,
  so the streams are identical by construction and the cross-core parity
  test (:mod:`tests.test_obs_trace`) can diff key-sets and full streams
  mechanically;
* :class:`TraceEvent` is the typed view of one raw event — what analysis
  and export code should consume instead of string-indexing dicts;
* :class:`TaskInterval` pairs each ``start``/``finish`` event into one
  scheduled task occupancy interval, reconstructing the *submission*
  instant from the chain rule (a session's chain is serial: task ``i``
  is submitted the moment task ``i - 1`` finishes, and the first task at
  run start), which gives per-task queueing delay without growing the
  event stream;
* :class:`QuerySpan` rolls a query's intervals up into the span the
  paper's argument needs: where did this query's simulated time go —
  retrieval, decode, consumption, or waiting — phase by phase.

The raw stream stays a list of plain dicts (the golden traces pin its
bytes; dict construction is also what keeps tracing cheap enough to be
on by default for small fleets).  Everything typed is a *view* built on
demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "BACKGROUND_KINDS",
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_VERSION",
    "PHASES",
    "QuerySpan",
    "TaskInterval",
    "TraceEvent",
    "intervals_from_events",
    "phase_of",
    "query_spans",
    "task_event",
    "validate_events",
]

#: Version of the locked task-event schema.  Bump only with a reviewed
#: golden-trace regeneration — the schema is a cross-PR contract.
TRACE_SCHEMA_VERSION = 1

#: The exact key-set of one task lifecycle event.  Order matters for the
#: raw dicts' repr stability; equality/JSON never depend on it.
TRACE_SCHEMA: Tuple[str, ...] = (
    "event", "t", "query", "kind", "operator", "resource", "duration",
)

#: Task kinds only background work emits (foreground queries emit
#: "retrieve" and "consume") — the job annotation on a span.  "read" /
#: "replicate" are the two halves of a re-replication job; "fail" /
#: "degrade" / "recover" are the zero-duration shard health transitions
#: a failure campaign stamps onto the timeline.
BACKGROUND_KINDS = frozenset({
    "read", "transcode", "write", "delete",
    "replicate", "fail", "degrade", "recover",
})

#: Execution phases a query span decomposes into, in data-path order.
#: ``plan``/``admit`` happen on the host clock before the simulation
#: starts (see ``ExecutorStats.admit_wall_seconds``); the simulated
#: phases are keyed off the resource a task ran on.
PHASES: Tuple[str, ...] = ("retrieve", "decode", "consume", "cache")


def task_event(event: str, t: float, query: str, kind: str, operator: str,
               resource: str, duration: float) -> Dict[str, object]:
    """The shared constructor of one task lifecycle event.

    Every executor core emits its ``start``/``finish`` records through
    this function, so the three streams carry the identical key-set and
    value layout — the property the golden traces and the cross-core
    parity tests pin.  It intentionally returns a plain dict (not a
    dataclass): tracing is on by default for fleets up to
    ``TRACE_AUTO_QUERIES`` and this runs once per event.
    """
    return {
        "event": event,
        "t": t,
        "query": query,
        "kind": kind,
        "operator": operator,
        "resource": resource,
        "duration": duration,
    }


def validate_events(events: Iterable[Mapping[str, object]]) -> None:
    """Raise ``ValueError`` on any event that breaks the locked schema."""
    want = set(TRACE_SCHEMA)
    for i, e in enumerate(events):
        keys = set(e)
        if keys != want:
            extra = sorted(keys - want)
            missing = sorted(want - keys)
            raise ValueError(
                f"trace event {i} breaks schema v{TRACE_SCHEMA_VERSION}: "
                f"extra keys {extra}, missing keys {missing}"
            )
        if e["event"] not in ("start", "finish"):
            raise ValueError(
                f"trace event {i}: unknown lifecycle {e['event']!r}"
            )


def phase_of(resource: str) -> str:
    """Map a task's resource onto its data-path phase.

    Disk channels (``disk`` or the per-shard ``disk:i``) serve retrieval,
    the decoder pool serves decode, the operator pool serves consumption,
    and the RAM tier serves cache hits.
    """
    if resource == "disk" or resource.startswith("disk:"):
        return "retrieve"
    if resource == "decoder":
        return "decode"
    if resource == "operators":
        return "consume"
    if resource == "cache":
        return "cache"
    return resource  # a future pool names its own phase


@dataclass(frozen=True)
class TraceEvent:
    """Typed view of one raw trace-event dict."""

    event: str  # "start" | "finish"
    t: float
    query: str
    kind: str
    operator: str
    resource: str
    duration: float

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "TraceEvent":
        return cls(*(raw[k] for k in TRACE_SCHEMA))  # type: ignore[arg-type]

    def to_dict(self) -> Dict[str, object]:
        return task_event(self.event, self.t, self.query, self.kind,
                          self.operator, self.resource, self.duration)


@dataclass(frozen=True)
class TaskInterval:
    """One scheduled task: submitted, then started, then finished.

    ``submit`` is reconstructed (chain rule), not recorded — see the
    module docstring.  ``wait = start - submit`` is the task's queueing
    delay on its resource.
    """

    query: str
    kind: str
    operator: str
    resource: str
    submit: float
    start: float
    end: float
    duration: float

    @property
    def wait(self) -> float:
        return self.start - self.submit

    @property
    def phase(self) -> str:
        return phase_of(self.resource)

    @property
    def background(self) -> bool:
        return self.kind in BACKGROUND_KINDS


def intervals_from_events(
    events: Sequence[Mapping[str, object]],
    start_time: Optional[float] = None,
) -> List[TaskInterval]:
    """Pair start/finish events into per-task intervals, in start order.

    ``start_time`` is the instant the run began (every session's first
    task was submitted then); it defaults to the earliest event time,
    which is exact for executors started on a fresh clock.

    Starts and finishes pair per query in stream order: each session's
    chain is serial, so its k-th finish closes its k-th start — no task
    ids needed.  A ``finish`` without a matching ``start`` (or an event
    breaking the schema) raises ``ValueError``.
    """
    validate_events(events)
    if not events:
        return []
    if start_time is None:
        start_time = min(float(e["t"]) for e in events)
    open_by_query: Dict[str, List[Mapping[str, object]]] = {}
    last_finish: Dict[str, float] = {}
    intervals: List[TaskInterval] = []
    for e in events:
        query = str(e["query"])
        if e["event"] == "start":
            open_by_query.setdefault(query, []).append(e)
            continue
        queue = open_by_query.get(query)
        if not queue:
            raise ValueError(
                f"finish without a start for query {query!r} at t={e['t']}"
            )
        start = queue.pop(0)
        if (start["kind"], start["operator"], start["resource"]) != (
                e["kind"], e["operator"], e["resource"]):
            raise ValueError(
                f"mismatched start/finish pair for query {query!r}: "
                f"{start['resource']}/{start['operator']} vs "
                f"{e['resource']}/{e['operator']}"
            )
        intervals.append(TaskInterval(
            query=query,
            kind=str(e["kind"]),
            operator=str(e["operator"]),
            resource=str(e["resource"]),
            submit=last_finish.get(query, start_time),
            start=float(start["t"]),
            end=float(e["t"]),
            duration=float(e["duration"]),
        ))
        last_finish[query] = float(e["t"])
    dangling = {q: len(v) for q, v in open_by_query.items() if v}
    if dangling:
        raise ValueError(f"unfinished tasks at end of trace: {dangling}")
    intervals.sort(key=lambda iv: (iv.start, iv.end, iv.query))
    return intervals


@dataclass(frozen=True)
class QuerySpan:
    """One query's full span: where its simulated time went, per phase.

    ``service_by_resource``/``wait_by_resource`` are chain-order float
    sums over the query's intervals; ``bound_resource`` names the
    resource that dominated ``service + wait`` — the critical resource
    of this query's latency.
    """

    query: str
    admitted: float  # first submission instant
    finished: float  # last finish instant
    n_tasks: int
    background: bool  # True for background evolution jobs
    #: True when any retrieval of this query was served from the RAM
    #: tier — a planned cache hit or a single-flight dedup follower (the
    #: stream cannot tell the two apart; ``CacheStats`` counts each).
    single_flight: bool
    service_by_resource: Dict[str, float] = field(default_factory=dict)
    wait_by_resource: Dict[str, float] = field(default_factory=dict)

    @property
    def latency(self) -> float:
        return self.finished - self.admitted

    @property
    def service_seconds(self) -> float:
        return sum(self.service_by_resource.values())

    @property
    def waited_seconds(self) -> float:
        return sum(self.wait_by_resource.values())

    @property
    def service_by_phase(self) -> Dict[str, float]:
        phases: Dict[str, float] = {}
        for resource, seconds in self.service_by_resource.items():
            phase = phase_of(resource)
            phases[phase] = phases.get(phase, 0.0) + seconds
        return phases

    @property
    def bound_resource(self) -> str:
        """The resource whose service + wait dominated this query's time."""
        resources = set(self.service_by_resource) | set(self.wait_by_resource)
        if not resources:
            return "none"
        return max(
            sorted(resources),
            key=lambda r: (self.service_by_resource.get(r, 0.0)
                           + self.wait_by_resource.get(r, 0.0)),
        )


def query_spans(
    events: Sequence[Mapping[str, object]],
    start_time: Optional[float] = None,
) -> List[QuerySpan]:
    """Roll a trace up into per-query spans, in first-submission order.

    A retrieval that ran on the RAM tier *while carrying a retrieve
    kind* was served by the cache plane — a planned hit or the
    executor's single-flight follower rewrite; the span's
    ``single_flight`` annotation flags it.  Kinds in
    :data:`BACKGROUND_KINDS` mark background evolution jobs.
    """
    order: List[str] = []
    by_query: Dict[str, List[TaskInterval]] = {}
    for iv in intervals_from_events(events, start_time):
        if iv.query not in by_query:
            order.append(iv.query)
            by_query[iv.query] = []
        by_query[iv.query].append(iv)
    spans: List[QuerySpan] = []
    for query in sorted(order, key=lambda q: (by_query[q][0].submit,
                                              order.index(q))):
        ivs = by_query[query]
        service: Dict[str, float] = {}
        wait: Dict[str, float] = {}
        for iv in ivs:
            service[iv.resource] = service.get(iv.resource, 0.0) + iv.duration
            wait[iv.resource] = wait.get(iv.resource, 0.0) + iv.wait
        spans.append(QuerySpan(
            query=query,
            admitted=min(iv.submit for iv in ivs),
            finished=max(iv.end for iv in ivs),
            n_tasks=len(ivs),
            background=any(iv.background for iv in ivs),
            single_flight=any(
                iv.kind == "retrieve" and iv.resource == "cache"
                for iv in ivs
            ),
            service_by_resource=service,
            wait_by_resource=wait,
        ))
    return spans
