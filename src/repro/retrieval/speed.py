"""Retrieval-speed estimation for storage formats (requirement R2).

For an encoded storage format the bottleneck is the decoder; reading the
compressed bytes from disk is an order of magnitude faster and overlaps
with decoding, so the estimate is the decode speed with chunk skipping.
For a raw storage format there is nothing to decode and the disk dictates
speed; sparse consumers benefit from reading sampled frames individually
(Table 3, note 2).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from repro.codec.model import CodecModel, DEFAULT_CODEC
from repro.storage.disk import DiskModel, DEFAULT_DISK
from repro.video.format import StorageFormat


def retrieval_speed(
    fmt: StorageFormat,
    consumer_sampling: Optional[Fraction] = None,
    codec: CodecModel = DEFAULT_CODEC,
    disk: DiskModel = DEFAULT_DISK,
) -> float:
    """Realtime multiple at which ``fmt`` supplies a consumer.

    ``consumer_sampling`` is the consumer's sampling rate relative to the
    ingest frame rate (defaults to consuming every stored frame).
    """
    if fmt.is_raw:
        return disk.raw_read_speed(
            fmt.fidelity,
            codec.raw_frame_bytes(fmt.fidelity),
            consumer_sampling,
        )
    decode = codec.decode_speed(fmt.fidelity, fmt.coding, consumer_sampling)
    # Encoded reads are pipelined with decoding; the disk is effectively
    # never the bottleneck for compressed data (Section 2.2), but we still
    # take the minimum for correctness with extreme parameterizations.
    stream_bytes = codec.encoded_bytes_per_second(fmt.fidelity, fmt.coding)
    disk_speed = disk.sequential_read_speed(stream_bytes)
    return min(decode, disk_speed)
