"""Query-mix drift detection (the trigger of online format evolution).

The paper's configurations are derived *backward* from the consumers the
operator declared; when the live query mix wanders away from that
declaration — new operators, new accuracy points, a different balance of
retrieval versus compute — the stored formats stop matching demand and
retrieval cost regresses toward the golden-format fallback.  The repro's
cross-layer feedback channel for this is deliberately thin (MetaSys-style):
the executor already accounts every task it schedules, so the detector
just folds finished runs into a sliding window and compares demand mixes.

:class:`DriftDetector` consumes :class:`~repro.query.scheduler.QueryOutcome`
objects (or raw trace events) and maintains, over a sliding window of the
most recent queries:

* per-(operator, accuracy) demand — the planned retrieve + consume seconds
  each consumer asked of the store, which is scheduling-independent;
* per-stream demand, for tiering/placement decisions.

``rebase()`` pins the current mix as the baseline (called whenever a plan
is adopted); ``drift_score()`` is the total-variation distance between the
baseline and current demand mixes, and ``drifted`` flags when it crosses
the threshold.  ``demanded_consumers()`` hands the re-planner the consumer
set the window actually observed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.operators.library import Consumer

__all__ = ["DriftDetector", "DriftSnapshot"]

#: Mix distance above which the detector flags drift.  Total variation
#: lives in [0, 1]; 0.25 means a quarter of the demand mass moved to
#: consumers the baseline did not anticipate (or away from ones it did).
DEFAULT_THRESHOLD = 0.25

#: Sliding window length, in queries.
DEFAULT_WINDOW = 32


@dataclass(frozen=True)
class DriftSnapshot:
    """One observed query's contribution to the demand estimate."""

    consumers: Tuple[Tuple[Consumer, float], ...]  # (consumer, seconds)
    stream: str
    seconds: float  # total demanded service seconds of the query


@dataclass
class DriftDetector:
    """Sliding-window demand estimator over executor outcomes."""

    window: int = DEFAULT_WINDOW
    threshold: float = DEFAULT_THRESHOLD
    #: Queries required in the window before ``drifted`` may fire; a
    #: single stray query should not trigger a store-wide migration.
    min_samples: int = 4
    _recent: Deque[DriftSnapshot] = field(default_factory=deque, repr=False)
    _baseline: Dict[Consumer, float] = field(default_factory=dict, repr=False)
    #: True while a rebase is waiting for its first full window: the plan
    #: was adopted before any query ran, so the baseline mix pins itself
    #: from the first ``min_samples`` observed queries.
    _pending: bool = field(default=False, repr=False)

    # -- folding in observations -------------------------------------------

    def observe(self, outcome) -> DriftSnapshot:
        """Fold one finished query into the window.

        Demand is read off the *plan* (retrieve + consume durations per
        stage), so the estimate is independent of how contention happened
        to schedule the run.  Background jobs (``session.klass != 0``)
        are skipped — evolution must not count its own migration I/O as
        query demand.
        """
        session = outcome.session
        if getattr(session, "klass", 0) != 0:
            snapshot = DriftSnapshot((), session.stream, 0.0)
            return snapshot
        per_op: List[Tuple[Consumer, float]] = []
        total = 0.0
        for stage in session.plan.stages:
            seconds = sum(t.duration for t in stage.tasks)
            per_op.append(
                (Consumer(stage.operator, session.accuracy), seconds)
            )
            total += seconds
        snapshot = DriftSnapshot(tuple(per_op), session.stream, total)
        self._recent.append(snapshot)
        while len(self._recent) > self.window:
            self._recent.popleft()
        if self._pending and len(self._recent) >= self.min_samples:
            # A plan adopted before any query ran: its baseline is the
            # first full window of demand it actually served.
            self._baseline = self.demand_by_consumer()
            self._pending = False
        return snapshot

    def observe_run(self, outcomes: Iterable) -> None:
        """Fold a whole run's outcomes (admission order) into the window."""
        for outcome in outcomes:
            self.observe(outcome)

    # -- demand mixes ------------------------------------------------------

    def demand_by_consumer(self) -> Dict[Consumer, float]:
        """Windowed demanded seconds per (operator, accuracy)."""
        demand: Dict[Consumer, float] = {}
        for snap in self._recent:
            for consumer, seconds in snap.consumers:
                demand[consumer] = demand.get(consumer, 0.0) + seconds
        return demand

    def demand_by_stream(self) -> Dict[str, float]:
        """Windowed demanded seconds per stream."""
        demand: Dict[str, float] = {}
        for snap in self._recent:
            demand[snap.stream] = demand.get(snap.stream, 0.0) + snap.seconds
        return demand

    def demanded_consumers(self) -> List[Consumer]:
        """Consumers the window observed, heaviest demand first."""
        demand = self.demand_by_consumer()
        return sorted(demand, key=lambda c: (-demand[c], c.operator,
                                             c.accuracy))

    # -- drift scoring -----------------------------------------------------

    def rebase(self, consumers: Optional[Iterable[Consumer]] = None) -> None:
        """Pin the current window's mix as the baseline.

        Called when a configuration is adopted (including by
        ``VStore.evolve_online``), so drift is always measured against
        the mix the *current* plan was derived for.  Before any query ran
        the window is empty; the baseline then pins itself from the first
        ``min_samples`` observed queries, so a stationary workload on a
        freshly configured store is not flagged as drift.  (``consumers``
        is accepted for callers that pass the plan's consumer set; the
        observed window supersedes it.)
        """
        baseline = self.demand_by_consumer()
        self._baseline = baseline
        self._pending = not baseline

    @staticmethod
    def _normalize(demand: Dict[Consumer, float]) -> Dict[Consumer, float]:
        total = sum(demand.values())
        if total <= 0:
            return {}
        return {c: v / total for c, v in demand.items()}

    def drift_score(self) -> float:
        """Total-variation distance between baseline and current mixes.

        0 = identical mixes, 1 = fully disjoint.  An empty baseline scores
        1.0 against any non-empty window (the detector was never rebased:
        everything the window wants is unanticipated) — except while a
        rebase is still waiting to pin itself from the first full window,
        which scores 0.0 (no mix to have drifted from yet).
        """
        current = self._normalize(self.demand_by_consumer())
        baseline = self._normalize(self._baseline)
        if not current:
            return 0.0
        if not baseline:
            return 0.0 if self._pending else 1.0
        keys = set(current) | set(baseline)
        return 0.5 * sum(
            abs(current.get(k, 0.0) - baseline.get(k, 0.0)) for k in keys
        )

    @property
    def samples(self) -> int:
        return len(self._recent)

    @property
    def drifted(self) -> bool:
        """Whether the window's mix has drifted past the threshold."""
        if self.samples < self.min_samples:
            return False
        return self.drift_score() >= self.threshold
