"""Programmatic figure data: the series behind the paper's plots.

The benchmarks print human-readable tables; downstream users who want to
*plot* Figure 3/11/13 need the raw series.  Each function here returns
plain dictionaries of lists, ready for any plotting library.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.clock import SimClock
from repro.codec.model import CodecModel, DEFAULT_CODEC
from repro.core.config import (
    Configuration,
    build_operator_profilers,
    derive_configuration,
    mean_profile_activity,
    resolve_profile_datasets,
)
from repro.core.erosion import ErosionPlan
from repro.ingest.budget import IngestBudget
from repro.operators.library import (
    OperatorLibrary,
    TABLE2_ORDER,
    default_library,
)
from repro.profiler.coding_profiler import CodingProfiler
from repro.profiler.profiler import OperatorProfiler
from repro.query.alternatives import (
    AlternativeScheme,
    one_to_n_scheme,
    one_to_one_scheme,
    vstore_scheme,
)
from repro.query.cascade import QueryCascade
from repro.query.engine import QueryEngine
from repro.video.coding import Coding, KEYFRAME_INTERVALS, SPEED_STEPS
from repro.video.fidelity import Fidelity, richest_fidelity


def speed_step_series(
    fidelity: Optional[Fidelity] = None,
    activity: float = 0.4,
    codec: CodecModel = DEFAULT_CODEC,
) -> Dict[str, List[float]]:
    """Figure 3a series: encode/decode speed and size per speed step."""
    fidelity = fidelity or richest_fidelity()
    out: Dict[str, List[float]] = {
        "step": [], "encode_speed": [], "decode_speed": [],
        "bytes_per_second": [],
    }
    for step in SPEED_STEPS:
        coding = Coding(step, 250)
        out["step"].append(step)
        out["encode_speed"].append(codec.encode_speed(fidelity, coding))
        out["decode_speed"].append(codec.decode_speed(fidelity, coding))
        out["bytes_per_second"].append(
            codec.encoded_bytes_per_second(fidelity, coding, activity)
        )
    return out


def keyframe_series(
    consumer_sampling: Fraction = Fraction(1, 30),
    fidelity: Optional[Fidelity] = None,
    activity: float = 0.4,
    codec: CodecModel = DEFAULT_CODEC,
) -> Dict[str, List[float]]:
    """Figure 3b series: decode speed (sparse and dense) and size per GOP."""
    fidelity = fidelity or richest_fidelity()
    out: Dict[str, List[float]] = {
        "keyframe_interval": [], "decode_sparse": [], "decode_dense": [],
        "bytes_per_second": [],
    }
    for kf in KEYFRAME_INTERVALS:
        coding = Coding("slowest", kf)
        out["keyframe_interval"].append(kf)
        out["decode_sparse"].append(
            codec.decode_speed(fidelity, coding, consumer_sampling)
        )
        out["decode_dense"].append(
            codec.decode_speed(fidelity, coding, Fraction(1))
        )
        out["bytes_per_second"].append(
            codec.encoded_bytes_per_second(fidelity, coding, activity)
        )
    return out


def query_speed_series(
    config: Configuration,
    library: OperatorLibrary,
    query: QueryCascade,
    dataset: str,
    accuracies: Sequence[float] = (0.95, 0.9, 0.8, 0.7),
    duration: float = 3600.0,
    schemes: Optional[Dict[str, AlternativeScheme]] = None,
) -> Dict[str, List[float]]:
    """Figure 11a series: per-scheme query speed across target accuracies."""
    engine = QueryEngine(config, library, dataset)
    if schemes is None:
        schemes = {
            "VStore": vstore_scheme(config),
            "1->1": one_to_one_scheme(config),
            "1->N": one_to_n_scheme(config),
        }
    out: Dict[str, List[float]] = {"accuracy": list(accuracies)}
    for name, scheme in schemes.items():
        out[name] = [
            engine.estimate(query, acc, duration, scheme).speed
            for acc in accuracies
        ]
    return out


def _memo_delta(
    profiler: CodingProfiler, since: Tuple[int, int]
) -> Tuple[float, Tuple[int, int]]:
    """Cache-reuse rate since the last snapshot, plus the new snapshot.

    Reuse counts both profiler-memo and planner adequacy-cache hits (the
    Section 6.4 examined-format metric).
    """
    runs = profiler.stats.runs
    hits = profiler.stats.memo_hits + profiler.stats.adequacy_hits
    d_runs, d_hits = runs - since[0], hits - since[1]
    rate = d_hits / (d_runs + d_hits) if (d_runs + d_hits) else 0.0
    return rate, (runs, hits)


def budget_sweep_series(
    library: OperatorLibrary,
    fractions: Sequence[float] = (0.8, 0.55, 0.4),
    floor: float = 0.35,
    profile_datasets: Optional[Mapping[str, str]] = None,
) -> Dict[str, List]:
    """Table 4 series: one configuration per ingestion budget.

    A single operator-profiler set and one :class:`CodingProfiler` (hence
    one shared :class:`~repro.codec.tables.ProfileTable` memo) are threaded
    through every sweep point — re-deriving per point would re-profile the
    identical formats from scratch.  ``memo_hit_rate`` reports, per point,
    the fraction of profiler lookups served from the memo (the paper's
    Section 6.4 metric; 92% in the paper's measurement).
    """
    clock = SimClock()
    consumers = list(library.consumers())
    profilers = build_operator_profilers(
        library, consumers, profile_datasets, clock
    )
    coding_profiler = CodingProfiler(
        activity=mean_profile_activity(profilers), clock=clock
    )
    out: Dict[str, List] = {
        "budget": [], "ingest_cores": [], "storage_bytes_per_second": [],
        "codings": [], "memo_hit_rate": [], "profiler_runs": [],
    }
    snapshot = (0, 0)

    def derive(cores: Optional[float]) -> Configuration:
        return derive_configuration(
            library,
            consumers=consumers,
            profile_datasets=profile_datasets,
            ingest_budget=IngestBudget(cores),
            clock=clock,
            profilers=profilers,
            coding_profiler=coding_profiler,
        )

    baseline = derive(None)
    budgets: List[Optional[float]] = [None] + [
        max(floor, baseline.plan.ingest_cores * f) for f in fractions
    ]
    for cores in budgets:
        config = baseline if cores is None else derive(cores)
        rate, snapshot = _memo_delta(coding_profiler, snapshot)
        out["budget"].append(cores)
        out["ingest_cores"].append(config.plan.ingest_cores)
        out["storage_bytes_per_second"].append(
            config.plan.storage_bytes_per_second
        )
        out["codings"].append(
            [sf.fmt.coding.label for sf in config.plan.formats]
        )
        out["memo_hit_rate"].append(rate)
        out["profiler_runs"].append(coding_profiler.stats.runs)
    return out


def operator_scaling_series(
    operator_order: Sequence[str] = TABLE2_ORDER,
    profile_datasets: Optional[Mapping[str, str]] = None,
) -> Dict[str, List]:
    """Figure 12 series: ingest cost and SF count as operators are added.

    Operator profilers are shared across sweep points (an operator's
    profile does not depend on which other operators are deployed), and
    coding profilers are shared per content-activity value, so each point
    only profiles the formats its new operator demands.
    """
    full_library = default_library(names=tuple(operator_order))
    clock = SimClock()
    profilers: Dict[str, OperatorProfiler] = {}
    coding_profilers: Dict[float, CodingProfiler] = {}
    snapshots: Dict[float, Tuple[int, int]] = {}
    out: Dict[str, List] = {
        "n_operators": [], "added": [], "ingest_cores": [],
        "n_formats": [], "memo_hit_rate": [],
    }
    for n in range(1, len(operator_order) + 1):
        library = default_library(names=tuple(operator_order[:n]))
        consumers = list(library.consumers())
        build_operator_profilers(
            full_library, consumers, profile_datasets, clock, profilers
        )
        datasets = resolve_profile_datasets(profile_datasets)
        needed = {datasets[c.operator] for c in consumers}
        point_profilers = {ds: profilers[ds] for ds in needed}
        activity = mean_profile_activity(point_profilers)
        coding_profiler = coding_profilers.get(activity)
        if coding_profiler is None:
            coding_profiler = CodingProfiler(activity=activity, clock=clock)
            coding_profilers[activity] = coding_profiler
            snapshots[activity] = (0, 0)
        config = derive_configuration(
            library,
            consumers=consumers,
            profile_datasets=profile_datasets,
            clock=clock,
            profilers=dict(point_profilers),
            coding_profiler=coding_profiler,
        )
        rate, snapshots[activity] = _memo_delta(
            coding_profiler, snapshots[activity]
        )
        out["n_operators"].append(n)
        out["added"].append(operator_order[n - 1])
        out["ingest_cores"].append(config.plan.ingest_cores)
        out["n_formats"].append(len(config.plan.formats))
        out["memo_hit_rate"].append(rate)
    return out


def erosion_series(plan: ErosionPlan) -> Dict[str, List[float]]:
    """Figure 13 series: overall speed and residual bytes by age."""
    ages = list(range(1, plan.lifespan_days + 1))
    out: Dict[str, List[float]] = {
        "age": ages,
        "overall_speed": [plan.overall_speed[a] for a in ages],
        "total_residual_bytes": [
            sum(plan.residual_bytes[(a, label)] for label in plan.labels)
            for a in ages
        ],
    }
    for label in plan.labels:
        out[f"residual:{label}"] = [
            plan.residual_bytes[(a, label)] for a in ages
        ]
    return out
