"""Open-loop serving: arrivals on the simulated timeline, admission
control, tenant quotas and weights, honest latency, and the SLO report.

The closed-loop contract (everything at t=0, no admission) is pinned by
the golden traces; these tests pin the open-loop extension — and the
cross-core property at the bottom replays random multi-tenant open-loop
fleets through the heap and reference cores, requiring bit-identical
traces and per-query accounting.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.slo import format_slo_table, percentile, slo_report
from repro.codec.decoder import DecoderPool
from repro.core.store import VStore
from repro.errors import QueryError
from repro.operators.library import default_library
from repro.query.cascade import QUERY_B, cascade_for
from repro.query.scheduler import (
    AdmissionConfig,
    BackgroundJob,
    DeadlinePolicy,
    FIFOPolicy,
    FairSharePolicy,
    ResourceTask,
    WeightedFairSharePolicy,
)
from repro.query.workload import ArrivalSpec, QueryMixEntry, TenantSpec


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    lib = default_library(names=("Diff", "S-NN", "NN", "Motion", "License",
                                 "OCR"))
    s = VStore(workdir=str(tmp_path_factory.mktemp("openloop")), library=lib)
    s.configure()
    s.ingest("jackson", n_segments=4)
    s.ingest("dashcam", n_segments=4)
    yield s
    s.close()


def make_ex(store, **kwargs):
    """Executor without cache/metrics: repeat admissions stay identical."""
    return store.executor(cache=None, metrics=None, **kwargs)


def admit_b(ex, **kwargs):
    return ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 16.0, **kwargs)


# ---------------------------------------------------------------------------
# Arrivals on the simulated timeline
# ---------------------------------------------------------------------------


def test_closed_loop_reduction_is_bit_identical(store):
    """arrival=now and tenant=None must reduce exactly to the closed-loop
    flow the golden traces pin — same trace, same floats."""
    def run(**admit_kwargs):
        ex = make_ex(store, decoder_pool=DecoderPool(1))
        for _ in range(3):
            admit_b(ex, **admit_kwargs)
        out = ex.run()
        return ex.trace_events, [
            (o.session.finished_at, o.latency, o.session.waited_seconds)
            for o in out
        ]

    assert run() == run(arrival=0.0)


def test_future_arrival_waits_and_latency_is_honest(store):
    ex = make_ex(store)
    session = admit_b(ex, arrival=5.0)
    baseline_ex = make_ex(store)
    admit_b(baseline_ex)
    service = baseline_ex.run()[0].latency

    (outcome,) = ex.run()
    assert session.entered_at == 5.0
    assert session.finished_at == pytest.approx(5.0 + service)
    # Honest latency: finish - arrival, not finish - run start.
    assert outcome.latency == pytest.approx(service)
    assert outcome.queued_seconds == 0.0
    # The gap before the arrival is accounted idle time, so the clock
    # invariant sum(categories) == now still holds.
    assert ex.clock.spent("idle") >= 5.0


def test_arrival_in_the_simulated_past_is_rejected(store):
    ex = make_ex(store)
    ex.clock.advance_to(5.0, "idle")
    with pytest.raises(QueryError):
        admit_b(ex, arrival=1.0)


def test_arrivals_interleave_with_execution(store):
    """A query arriving mid-run starts at its arrival instant, not at the
    end of the already-running fleet."""
    ex = make_ex(store)
    admit_b(ex)
    late = admit_b(ex, arrival=0.5)
    out = ex.run()
    assert late.entered_at == 0.5
    # Uncontended pools: the late query is unaffected by the first.
    assert out[1].latency == pytest.approx(out[0].latency)


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


def test_admission_bounds_in_flight(store):
    ex = make_ex(store, admission=AdmissionConfig(max_in_flight=2))
    for _ in range(6):
        admit_b(ex)
    out = ex.run()
    assert len(out) == 6
    timeline = ex.admission_timeline
    assert timeline, "admission control must sample its timeline"
    assert max(f for _, _, f in timeline) == 2
    assert max(q for _, q, _ in timeline) == 4
    assert timeline[-1][1:] == (0, 0)  # drained clean
    # Queue wait is real latency: the queued queries carry it.
    assert sum(1 for o in out if o.queued_seconds > 0) == 4


def test_latency_includes_admission_queue_wait(store):
    ex = make_ex(store, admission=AdmissionConfig(max_in_flight=1))
    admit_b(ex)
    admit_b(ex)
    first, second = ex.run()
    assert first.queued_seconds == 0.0
    assert second.queued_seconds == pytest.approx(first.latency)
    assert second.latency == pytest.approx(first.latency * 2)
    assert second.session.entered_at == first.session.finished_at


def test_edf_admission_admits_tightest_deadline_first(store):
    ex = make_ex(
        store,
        admission=AdmissionConfig(max_in_flight=1, queue_policy="edf"),
    )
    blocker = admit_b(ex)
    by_deadline = {
        30.0: admit_b(ex, deadline=30.0),
        10.0: admit_b(ex, deadline=10.0),
        20.0: admit_b(ex, deadline=20.0),
    }
    ex.run()
    entered = sorted(by_deadline, key=lambda d: by_deadline[d].entered_at)
    assert entered == [10.0, 20.0, 30.0]
    assert blocker.entered_at == 0.0


def test_arrival_order_admission_ignores_deadlines(store):
    ex = make_ex(store, admission=AdmissionConfig(max_in_flight=1))
    admit_b(ex)
    urgent_last = [admit_b(ex, deadline=30.0), admit_b(ex, deadline=10.0)]
    ex.run()
    assert urgent_last[0].entered_at < urgent_last[1].entered_at


def test_wfair_admission_shares_by_weight(store):
    """Capacity 1, gold weighted 10x: gold's backlog drains almost
    entirely before bronze's second query gets a slot."""
    ex = make_ex(
        store,
        admission=AdmissionConfig(
            max_in_flight=1, queue_policy="wfair",
            tenant_weights={"gold": 10.0, "bronze": 1.0},
        ),
    )
    admit_b(ex)  # qid 0: warm-up blocker, anonymous tenant
    sessions = [admit_b(ex, tenant="gold") for _ in range(3)]
    sessions += [admit_b(ex, tenant="bronze") for _ in range(3)]
    ex.run()
    order = [s.qid for s in sorted(sessions, key=lambda s: s.entered_at)]
    # gold1 (tie on zero attained service, admission order breaks it),
    # bronze1 (gold now has attained service), then gold's remaining
    # backlog at 1/10th the accounted rate, then bronze drains.
    assert order == [1, 4, 2, 3, 5, 6]


def test_tenant_quota_never_blocks_other_tenants(store):
    ex = make_ex(
        store,
        admission=AdmissionConfig(max_in_flight=4,
                                  tenant_quotas={"gold": 1}),
    )
    gold = [admit_b(ex, tenant="gold") for _ in range(3)]
    bronze = [admit_b(ex, tenant="bronze") for _ in range(3)]
    ex.run()
    # Bronze is admitted instantly: gold's backlog holds one slot, not
    # the head of a global queue.
    assert all(s.entered_at == 0.0 for s in bronze)
    gold.sort(key=lambda s: s.entered_at)
    for prev, nxt in zip(gold, gold[1:]):
        assert prev.finished_at <= nxt.entered_at


def test_background_jobs_bypass_admission(store):
    """Evolution jobs have no arrival semantics: they run alongside the
    foreground without consuming admission slots."""
    job = BackgroundJob(
        name="erode", stream="dashcam", kind="erode",
        tasks=(ResourceTask(kind="retrieve", resource="disk", units=1,
                            duration=0.25, category="disk",
                            operator="erode"),),
    )
    ex = make_ex(store, admission=AdmissionConfig(max_in_flight=1))
    admit_b(ex)
    admit_b(ex)
    ex.admit_job(job)
    out = ex.run()
    jobs = [o for o in out if o.session.klass == 1]
    assert len(jobs) == 1
    # The job started immediately even though the single admission slot
    # was held by the first query.
    assert jobs[0].session.entered_at == 0.0
    assert max(f for _, _, f in ex.admission_timeline) == 1


def test_admission_config_validation():
    with pytest.raises(QueryError):
        AdmissionConfig(max_in_flight=0)
    with pytest.raises(QueryError):
        AdmissionConfig(queue_policy="lifo")
    with pytest.raises(QueryError):
        AdmissionConfig(tenant_quotas={"t": 0})
    with pytest.raises(QueryError):
        AdmissionConfig(tenant_weights={"t": 0.0})
    with pytest.raises(QueryError):
        WeightedFairSharePolicy(weights={"t": -1.0})


def test_fastpath_disqualified_for_open_loop_fleets(store):
    """The vectorized core handles only the closed-loop regime; every
    open-loop feature must force the general heap core."""
    def core_for(**kwargs):
        admission = kwargs.pop("admission", None)
        ex = make_ex(store, admission=admission)
        admit_b(ex, **kwargs)
        ex.run()
        return ex.stats().core

    assert core_for() == "fastpath"  # control: this fleet qualifies
    assert core_for(arrival=2.0) == "heap"
    assert core_for(tenant="gold") == "heap"
    assert core_for(admission=AdmissionConfig(max_in_flight=8)) == "heap"


# ---------------------------------------------------------------------------
# SLO analysis
# ---------------------------------------------------------------------------


def test_percentile_is_exact_nearest_rank():
    values = list(range(1, 101))
    assert percentile(values, 0.0) == 1
    assert percentile(values, 0.50) == 50
    assert percentile(values, 0.95) == 95
    assert percentile(values, 0.99) == 99
    assert percentile(values, 1.0) == 100
    assert percentile([7.0], 0.5) == 7.0
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


def test_slo_report_quantiles_and_misses(store):
    ex = make_ex(store, admission=AdmissionConfig(max_in_flight=1))
    admit_b(ex, tenant="gold", deadline=1e-6)  # unmeetable
    admit_b(ex, tenant="gold", deadline=1e9)
    admit_b(ex, tenant="bronze")
    out = ex.run()
    report = slo_report(out, queue_timeline=ex.admission_timeline,
                        makespan=ex.stats().makespan)
    assert report.overall.n_queries == 3
    assert [t.tenant for t in report.tenants] == ["bronze", "gold"]
    gold = report.tenants[1]
    assert (gold.deadline_total, gold.deadline_misses) == (2, 1)
    assert gold.miss_rate == 0.5
    assert report.tenants[0].miss_rate == 0.0  # no deadlines carried
    o = report.overall
    assert o.p50_latency <= o.p95_latency <= o.p99_latency
    assert o.mean_queued > 0.0
    assert 0.0 < report.fairness <= 1.0
    assert report.peak_in_flight == 1
    assert report.throughput_qps == pytest.approx(3 / report.makespan)
    table = format_slo_table(report)
    assert "gold" in table and "bronze" in table and "q/s" in table


def test_slo_report_requires_queries():
    with pytest.raises(ValueError):
        slo_report([])


def test_serve_end_to_end_is_deterministic(store):
    tenants = [
        TenantSpec(name="gold", arrivals=ArrivalSpec(rate=0.4),
                   mix=(QueryMixEntry(query="B", dataset="dashcam"),),
                   slo_seconds=8.0, weight=2.0),
        TenantSpec(name="bronze", arrivals=ArrivalSpec(rate=0.4),
                   mix=(QueryMixEntry(query="B", dataset="jackson"),),
                   quota=2),
    ]

    def run():
        report = store.serve(
            tenants, horizon=40.0, seed=9,
            admission=AdmissionConfig(max_in_flight=4, queue_policy="edf"),
            policy=WeightedFairSharePolicy(),
            decoder_pool=DecoderPool(1),
        )
        return report

    a, b = run(), run()
    assert [t.tenant for t in a.slo.tenants] == ["bronze", "gold"]
    assert a.slo.overall.n_queries == len(a.outcomes)
    assert a.slo.overall.n_queries > 5
    # Same tenants, same seed: the whole serving run replays bit-equal.
    key = lambda r: [(o.session.qid, o.session.finished_at, o.latency,
                      o.queued_seconds) for o in r.outcomes]
    assert key(a) == key(b)
    assert a.slo == b.slo
    # Quotas/weights flow from the TenantSpec into the admission config.
    assert a.stats.makespan > 0


# ---------------------------------------------------------------------------
# Cross-core parity on open-loop fleets
# ---------------------------------------------------------------------------


POLICIES = (
    FIFOPolicy,
    FairSharePolicy,
    DeadlinePolicy,
    lambda: WeightedFairSharePolicy(weights={"gold": 2.0}),
)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_heap_core_matches_reference_on_open_loop_fleets(store, data):
    """Random mixed-tenant open-loop fleet, both general cores, every
    trace byte and per-query float equal."""
    policy_factory = data.draw(st.sampled_from(POLICIES), label="policy")
    decoder_ctx = data.draw(st.sampled_from((None, 1, 2)), label="decoder")
    if data.draw(st.booleans(), label="admission"):
        admission = AdmissionConfig(
            max_in_flight=data.draw(st.sampled_from((1, 2, 4))),
            queue_policy=data.draw(
                st.sampled_from(("arrival", "edf", "wfair"))),
            tenant_quotas=data.draw(st.sampled_from((None, {"gold": 1}))),
            tenant_weights=data.draw(
                st.sampled_from((None, {"gold": 4.0}))),
        )
    else:
        admission = None
    n = data.draw(st.integers(1, 5), label="queries")
    admissions = []
    for _ in range(n):
        qname = data.draw(st.sampled_from(("A", "B")))
        dataset = {"A": "jackson", "B": "dashcam"}[qname]
        # Coarse grid so arrivals collide with completions and each other.
        arrival = data.draw(st.sampled_from((0.0, 0.25, 0.5, 1.0, 4.0)))
        tenant = data.draw(st.sampled_from((None, "gold", "bronze")))
        deadline = data.draw(st.sampled_from((None, 2.0, 10.0)))
        admissions.append((qname, dataset, arrival, tenant, deadline))

    def run(core):
        ex = make_ex(
            store,
            policy=policy_factory(),
            decoder_pool=DecoderPool(decoder_ctx) if decoder_ctx else None,
            admission=admission,
            core=core,
        )
        for qname, dataset, arrival, tenant, deadline in admissions:
            ex.admit(cascade_for(qname), dataset, 0.9, 0.0, 16.0,
                     arrival=arrival, tenant=tenant, deadline=deadline)
        return ex, ex.run()

    heap_ex, heap_out = run("heap")
    ref_ex, ref_out = run("reference")

    assert heap_ex.trace_events == ref_ex.trace_events
    assert heap_ex.admission_timeline == ref_ex.admission_timeline
    for h, r in zip(heap_out, ref_out):
        assert h.session.finished_at == r.session.finished_at
        assert h.session.entered_at == r.session.entered_at
        assert h.latency == r.latency
        assert h.queued_seconds == r.queued_seconds
        assert h.session.service_by_resource == r.session.service_by_resource
    heap_stats, ref_stats = heap_ex.stats(), ref_ex.stats()
    assert heap_stats.makespan == ref_stats.makespan
    assert heap_stats.busy_seconds == ref_stats.busy_seconds
    assert heap_stats.events == ref_stats.events
