"""Exporters: golden Chrome trace and the columnar analytics tier.

The Chrome trace-event JSON is deterministic byte-for-byte, so it is
pinned golden like the raw executor traces (regenerate intentionally
with ``pytest tests/test_obs_export.py --update-golden`` and review the
diff).  The columnar tier must round-trip rows bit-equal through
whichever format the host supports — Parquet branches are exercised only
when pyarrow exists; the JSONL fallback always runs.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.codec.decoder import DecoderPool
from repro.core.store import VStore
from repro.obs.export import (
    bench_history_rows,
    chrome_trace,
    columnar_suffix,
    export_run,
    read_rows,
    to_dataframe,
    write_chrome_trace,
    write_rows,
)
from repro.operators.library import default_library
from repro.query.cascade import QUERY_A, QUERY_B
from repro.query.scheduler import FIFOPolicy, OperatorContextPool
from repro.storage.disk import DiskBandwidthPool

GOLDEN_DIR = Path(__file__).parent / "golden"

ROWS = [
    {"resource": "disk", "t": 0.0, "running": 1, "waiting": 0},
    {"resource": "disk", "t": 0.5, "running": 0, "waiting": 2},
    {"resource": "decoder", "t": 0.25, "running": 1, "waiting": None},
    {"resource": "decoder", "t": 1.0, "running": 0, "label": "tail"},
]


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One deterministic contended run: (events, start_time)."""
    lib = default_library(names=("Diff", "S-NN", "NN", "Motion", "License",
                                 "OCR"))
    with VStore(workdir=str(tmp_path_factory.mktemp("export")),
                library=lib) as store:
        store.configure()
        store.ingest("jackson", n_segments=4)
        store.ingest("dashcam", n_segments=4)
        ex = store.executor(
            policy=FIFOPolicy(),
            disk_pool=DiskBandwidthPool(1),
            decoder_pool=DecoderPool(1),
            operator_pool=OperatorContextPool(2),
        )
        ex.admit(QUERY_A, "jackson", 0.9, 0.0, 16.0)
        ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 16.0, deadline=3.0)
        ex.admit(QUERY_B, "dashcam", 0.9, 0.0, 8.0, contexts=2)
        ex.run()
        yield list(ex.trace_events), ex.started_at


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------


def test_chrome_trace_matches_golden(traced_run, tmp_path, request):
    events, start = traced_run
    path = tmp_path / "chrome_trace.json"
    write_chrome_trace(str(path), events, start)
    data = path.read_bytes()
    golden = GOLDEN_DIR / "chrome_trace_fifo.json"
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden.write_bytes(data)
        return
    assert golden.exists(), (
        f"missing golden chrome trace {golden}; generate it with "
        f"pytest tests/test_obs_export.py --update-golden"
    )
    assert golden.read_bytes() == data, (
        "the exported Chrome trace drifted from the golden file; if the "
        "change is intentional, regenerate with --update-golden and "
        "review the diff"
    )


def test_chrome_trace_structure(traced_run):
    events, start = traced_run
    payload = chrome_trace(events, start)
    te = payload["traceEvents"]
    phases = {e["ph"] for e in te}
    assert phases == {"M", "X", "C"}
    # One named process lane per query, plus the resources lane (pid 0).
    names = {e["args"]["name"] for e in te if e["ph"] == "M"}
    assert "resources" in names
    assert len(names) == 4  # 3 queries + resources
    slices = [e for e in te if e["ph"] == "X"]
    n_tasks = sum(1 for e in events if e["event"] == "start")
    assert len(slices) == n_tasks
    for s in slices:
        assert s["dur"] >= 0
        assert s["pid"] >= 1  # query lanes never collide with resources
        assert "resource" in s["args"]
    counters = [e for e in te if e["ph"] == "C"]
    assert counters
    assert all(c["pid"] == 0 for c in counters)


def test_chrome_trace_deterministic(traced_run, tmp_path):
    events, start = traced_run
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    write_chrome_trace(str(a), events, start)
    write_chrome_trace(str(b), list(events), start)
    assert a.read_bytes() == b.read_bytes()


# ---------------------------------------------------------------------------
# The columnar tier
# ---------------------------------------------------------------------------


def test_jsonl_roundtrip_bit_equal(tmp_path):
    path = str(tmp_path / "rows.jsonl")
    write_rows(path, ROWS)
    back = read_rows(path)
    # Rows come back with the uniform sorted key-set, None-filled.
    keys = sorted({k for r in ROWS for k in r})
    assert [sorted(r) for r in back] == [keys] * len(ROWS)
    for orig, got in zip(ROWS, back):
        for k in keys:
            assert got[k] == orig.get(k)
    # Writing the reloaded rows again is byte-identical.
    path2 = str(tmp_path / "rows2.jsonl")
    write_rows(path2, back)
    assert Path(path).read_bytes() == Path(path2).read_bytes()


def test_parquet_roundtrip_when_available(tmp_path):
    pytest.importorskip("pyarrow")
    path = str(tmp_path / "rows.parquet")
    write_rows(path, ROWS)
    back = read_rows(path)
    assert len(back) == len(ROWS)
    for orig, got in zip(ROWS, back):
        for k, v in orig.items():
            assert got[k] == v


def test_columnar_suffix_matches_host(tmp_path):
    suffix = columnar_suffix()
    assert suffix in (".parquet", ".jsonl")
    try:
        import pyarrow  # noqa: F401

        assert suffix == ".parquet"
    except ImportError:
        assert suffix == ".jsonl"


def test_unknown_suffix_rejected(tmp_path):
    with pytest.raises(ValueError):
        write_rows(str(tmp_path / "rows.csv"), ROWS)
    with pytest.raises(ValueError):
        read_rows(str(tmp_path / "rows.csv"))


def test_to_dataframe_roundtrip(tmp_path):
    pytest.importorskip("pandas")
    path = str(tmp_path / "rows" + columnar_suffix())
    write_rows(path, ROWS)
    df = to_dataframe(path)
    assert len(df) == len(ROWS)
    assert df.iloc[0]["resource"] == "disk"
    # Bit-equal through pandas: frame -> rows -> file reproduces the bytes.
    back = df.where(df.notna(), None).to_dict("records")
    path2 = str(tmp_path / "rows2" + columnar_suffix())
    write_rows(path2, back)
    assert read_rows(path2) == read_rows(path)


def test_to_dataframe_raises_cleanly_without_pandas(tmp_path, monkeypatch):
    import builtins

    real_import = builtins.__import__

    def no_pandas(name, *args, **kwargs):
        if name == "pandas":
            raise ImportError("pandas disabled for this test")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", no_pandas)
    with pytest.raises(RuntimeError, match="requires pandas"):
        to_dataframe([{"a": 1}])


def test_bench_history_rows(tmp_path):
    bench = {"schema": 1, "tests": {},
             "metrics": {"b/x": {"events_per_second": 2.0},
                         "a/y": {"wall_seconds": 1.0, "core": "heap"}}}
    path = tmp_path / "BENCH.json"
    path.write_text(json.dumps(bench))
    rows = bench_history_rows(str(path))
    assert [r["cell"] for r in rows] == ["a/y", "b/x"]  # sorted
    assert rows[0]["core"] == "heap"
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": 99}))
    with pytest.raises(ValueError):
        bench_history_rows(str(bad))


# ---------------------------------------------------------------------------
# The whole bundle
# ---------------------------------------------------------------------------


def test_export_run_writes_the_bundle(traced_run, tmp_path):
    events, start = traced_run
    written = export_run(
        str(tmp_path / "out"),
        events=events,
        metrics_rows=[{"metric": "x", "type": "gauge", "value": 1.0}],
        start_time=start,
    )
    assert set(written) == {"chrome_trace", "trace_events", "intervals",
                            "queries", "utilization", "metrics"}
    for path in written.values():
        assert Path(path).exists()
    # Reloaded trace events are the locked-schema stream, bit-equal.
    back = read_rows(written["trace_events"])
    assert back == [dict(sorted(e.items())) for e in events]
    # Per-query table names each query once.
    queries = read_rows(written["queries"])
    assert len(queries) == 3
    assert all(q["latency"] > 0 for q in queries)


def test_export_run_without_trace_writes_metrics_only(tmp_path):
    written = export_run(
        str(tmp_path / "out"),
        metrics_rows=[{"metric": "x", "type": "gauge", "value": 1.0}],
    )
    assert set(written) == {"metrics"}
