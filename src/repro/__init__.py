"""VStore: a data store for analytics on large videos.

A faithful reproduction of Xu, Botelho & Lin, *VStore: A Data Store for
Analytics on Large Videos* (EuroSys 2019), built as a self-contained Python
library over a deterministic simulation substrate (see DESIGN.md for the
substitutions).

Quickstart::

    from repro import VStore

    store = VStore()
    config = store.configure()          # backward derivation (Section 4)
    report = store.query("B", dataset="dashcam", accuracy=0.9,
                         duration=3600.0)
    print(f"query speed: {report.speed:.0f}x realtime")
"""

from repro.core.config import Configuration, derive_configuration
from repro.core.store import VStore
from repro.errors import VStoreError
from repro.ingest.budget import IngestBudget
from repro.operators.library import Consumer, OperatorLibrary, default_library
from repro.query.cascade import QUERY_A, QUERY_B, QueryCascade
from repro.video.coding import Coding, RAW
from repro.video.fidelity import Fidelity
from repro.video.format import ConsumptionFormat, StorageFormat

__version__ = "1.0.0"

__all__ = [
    "Coding",
    "Configuration",
    "Consumer",
    "ConsumptionFormat",
    "Fidelity",
    "IngestBudget",
    "OperatorLibrary",
    "QUERY_A",
    "QUERY_B",
    "QueryCascade",
    "RAW",
    "StorageFormat",
    "VStore",
    "VStoreError",
    "default_library",
    "derive_configuration",
    "__version__",
]
