"""The monotone 2-D boundary search (Section 4.2, Figure 8)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.boundary import BoundarySearch
from repro.rng import rng_for


def _grid_search(grid):
    """Reference: scan every cell; per row, the poorest adequate column."""
    boundary = []
    n_rows, n_cols = grid.shape
    for r in range(n_rows - 1, -1, -1):
        cols = np.nonzero(grid[r])[0]
        if len(cols):
            boundary.append((r, int(cols[0])))
    return boundary


def _monotone_grid(n_rows, n_cols, seed):
    """A random monotone boolean grid (adequate in both directions)."""
    rng = rng_for("grid", seed, n_rows, n_cols)
    # A staircase: per row threshold column, non-increasing with row.
    thresholds = np.sort(rng.integers(0, n_cols + 1, size=n_rows))[::-1]
    grid = np.zeros((n_rows, n_cols), dtype=bool)
    for r in range(n_rows):
        grid[r, thresholds[r]:] = True
    return grid


@given(st.integers(0, 500))
@settings(max_examples=60, deadline=None)
def test_boundary_matches_reference(seed):
    grid = _monotone_grid(5, 10, seed)
    search = BoundarySearch(5, 10, lambda r, c: bool(grid[r, c]))
    result = search.walk()
    expected = _grid_search(grid)
    # The walk finds every row that has an adequate cell, except rows below
    # the first row with none (where monotonicity says none exist either).
    assert result.boundary == expected


@given(st.integers(0, 200))
@settings(max_examples=40, deadline=None)
def test_probe_count_linear(seed):
    n_rows, n_cols = 5, 10
    grid = _monotone_grid(n_rows, n_cols, seed)
    search = BoundarySearch(n_rows, n_cols, lambda r, c: bool(grid[r, c]))
    result = search.walk()
    # O(rows + cols) distinct probes, never rows x cols.
    assert len(set(result.probed)) <= n_rows + n_cols


def test_all_adequate():
    search = BoundarySearch(3, 4, lambda r, c: True)
    result = search.walk()
    assert result.boundary == [(2, 0), (1, 0), (0, 0)]


def test_none_adequate():
    search = BoundarySearch(3, 4, lambda r, c: False)
    result = search.walk()
    assert result.boundary == []
    assert len(result.probed) == 4  # scanned the richest row only


def test_single_cell():
    assert BoundarySearch(1, 1, lambda r, c: True).walk().boundary == [(0, 0)]
    assert BoundarySearch(1, 1, lambda r, c: False).walk().boundary == []


def test_rejects_empty_grid():
    with pytest.raises(ValueError):
        BoundarySearch(0, 3, lambda r, c: True)


def test_boundary_walk_explores_whole_boundary():
    """Unlike classic saddleback search, the walk cannot stop at the first
    adequate point: a cheaper boundary point may sit in a poorer row."""
    grid = np.array([
        [False, False, True],
        [False, True, True],
        [True, True, True],
    ])
    search = BoundarySearch(3, 3, lambda r, c: bool(grid[r, c]))
    result = search.walk()
    assert result.boundary == [(2, 0), (1, 1), (0, 2)]
