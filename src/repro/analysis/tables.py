"""Pretty-printers rendering configurations the way the paper's tables do."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.config import Configuration
from repro.units import fmt_bytes, fmt_speed


def format_configuration_table(config: Configuration) -> str:
    """Render a configuration like Table 3: CFs per (operator, accuracy)
    and the coalesced SF set."""
    operators = sorted({c.operator for c in config.consumers})
    accuracies = sorted({c.accuracy for c in config.consumers}, reverse=True)
    sf_names = {sf.label: f"SF{i}" for i, sf in enumerate(config.plan.formats)}
    golden_label = config.plan.golden.label
    sf_names[golden_label] = "SFg"

    lines: List[str] = []
    header = ["F1"] + operators
    lines.append(" | ".join(f"{h:>28}" for h in header))
    for acc in accuracies:
        row = [f"{acc:>28.2f}"]
        for op in operators:
            matches = [c for c in config.consumers
                       if c.operator == op and c.accuracy == acc]
            if not matches:
                row.append(f"{'-':>28}")
                continue
            decision = config.decision_for(matches[0])
            sf = config.storage_plan_for(matches[0])
            cell = (f"{decision.fidelity.label} {sf_names[sf.label]} "
                    f"{fmt_speed(decision.consumption_speed)}")
            row.append(f"{cell:>28}")
        lines.append(" | ".join(row))

    lines.append("")
    lines.append("Storage formats:")
    for sf in config.plan.formats:
        name = sf_names[sf.label]
        lines.append(f"  {name:>4}: {sf.label}")
    return "\n".join(lines)


def format_query_speed_table(
    rows: Sequence[Dict[str, object]],
) -> str:
    """Render Figure 11a-style rows: dataset, accuracy, scheme -> speed."""
    lines = [f"{'dataset':>10} {'accuracy':>9} {'scheme':>8} {'speed':>12}"]
    for row in rows:
        lines.append(
            f"{row['dataset']:>10} {row['accuracy']:>9} "
            f"{row['scheme']:>8} {fmt_speed(float(row['speed'])):>12}"
        )
    return "\n".join(lines)


def format_profiling_summary_table(
    rows: Sequence[Dict[str, object]],
) -> str:
    """Render per-sweep-point profiling effort: runs, memo hits, hit rate.

    Each row carries ``label``, ``runs``, ``memo_hits`` (cumulative counts
    from the shared profiler) — the table shows how the Section 6.4
    memoization claim (92% hit rate) holds up across a sweep.
    """
    lines = [f"{'point':>16} {'runs':>7} {'memo hits':>10} {'hit rate':>9}"]
    for row in rows:
        runs = int(row["runs"])
        hits = int(row["memo_hits"])
        rate = hits / (runs + hits) if runs + hits else 0.0
        lines.append(
            f"{str(row['label']):>16} {runs:>7} {hits:>10} {rate:>8.1%}"
        )
    return "\n".join(lines)


def format_erosion_table(config: Configuration) -> str:
    """Render the erosion plan: overall speed and residual bytes per age."""
    erosion = config.erosion
    if erosion is None:
        return "(no erosion plan)"
    lines = [f"decay factor k = {erosion.k:.3f}, Pmin = {erosion.pmin:.3f}"]
    lines.append(f"{'age':>4} {'overall speed':>14} {'residual':>12}")
    for age in range(1, erosion.lifespan_days + 1):
        residual = sum(
            erosion.residual_bytes.get((age, label), 0.0)
            for label in erosion.labels
        )
        lines.append(
            f"{age:>4} {erosion.overall_speed.get(age, 1.0):>14.3f} "
            f"{fmt_bytes(residual):>12}"
        )
    return "\n".join(lines)
