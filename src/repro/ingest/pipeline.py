"""Ingestion pipeline: a stream flowing into the segment store.

Two modes cover the experiments:

* ``ingest_segments`` actually encodes and stores N segments, charging
  simulated transcode time — used by end-to-end query tests;
* ``report`` analytically extrapolates storage growth (GB/day, Figure 11b)
  and transcode CPU (Figure 11c) from a sample window, which is how
  multi-day costs are accounted without simulating a day frame by frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.clock import SimClock
from repro.codec.model import CodecModel, DEFAULT_CODEC
from repro.ingest.budget import IngestBudget
from repro.ingest.transcoder import Transcoder
from repro.storage.segment_store import SegmentStore
from repro.units import DAY
from repro.video.content import ContentModel
from repro.video.datasets import get_dataset
from repro.video.format import StorageFormat
from repro.video.segment import Segment


@dataclass(frozen=True)
class IngestionReport:
    """Analytic per-stream ingestion/storage cost summary."""

    stream: str
    bytes_per_second: float  # total across storage formats
    bytes_per_day: float
    cores_required: float
    cpu_utilization_percent: float
    per_format_bytes_per_second: Dict[str, float]


class IngestionPipeline:
    """Ingests one dataset's stream into a set of storage formats."""

    #: Sample window (seconds) for estimating a stream's mean activity.
    ACTIVITY_WINDOW = 120.0

    def __init__(
        self,
        dataset: str,
        formats: Sequence[StorageFormat],
        store: Optional[SegmentStore] = None,
        codec: CodecModel = DEFAULT_CODEC,
        clock: Optional[SimClock] = None,
        budget: IngestBudget = IngestBudget(),
        stream: Optional[str] = None,
    ):
        self.dataset = dataset
        #: Stream name segments are stored under.  Defaults to the dataset
        #: name; an alias lets one content model stand in for many cameras
        #: of a fleet ("cam07" ingested with jackson's statistics).
        self.stream = stream or dataset
        if "/" in self.stream:
            # Segment-store keys are "/"-structured; a "/" in the stream
            # name would leak this stream into other streams' prefix scans.
            raise ValueError(f"stream name must not contain '/': {self.stream!r}")
        self.content: ContentModel = get_dataset(dataset).content()
        self.formats = list(formats)
        self.store = store
        self.codec = codec
        self.clock = clock or SimClock()
        self.transcoder = Transcoder(self.formats, codec, self.clock, budget)
        self._mean_activity: Optional[float] = None

    # -- activity ------------------------------------------------------------

    def mean_activity(self) -> float:
        """Mean frame-change activity over a sample window (cached)."""
        if self._mean_activity is None:
            clip = self.content.clip(0.0, self.ACTIVITY_WINDOW, fps=2)
            self._mean_activity = clip.mean_activity()
        return self._mean_activity

    def segment_activity(self, segment: Segment) -> float:
        """Activity of one segment (coarse 2 fps ground-truth pass)."""
        clip = self.content.clip(segment.t0, segment.seconds, fps=2)
        return clip.mean_activity()

    # -- actual ingestion -----------------------------------------------------

    def ingest_segments(
        self, n_segments: int, start_index: int = 0, materialize: bool = False
    ) -> List[Segment]:
        """Encode and store ``n_segments`` consecutive segments."""
        if self.store is None:
            raise ValueError("ingest_segments requires a SegmentStore")
        done = []
        for i in range(start_index, start_index + n_segments):
            segment = Segment(self.stream, i)
            activity = self.segment_activity(segment)
            for encoded in self.transcoder.transcode(segment, activity, materialize):
                self.store.put(encoded)
            done.append(segment)
        return done

    # -- analytic accounting -----------------------------------------------------

    def report(self) -> IngestionReport:
        """Extrapolated storage and CPU cost of ingesting this stream."""
        activity = self.mean_activity()
        per_format = {
            fmt.label: self.codec.encoded_bytes_per_second(
                fmt.fidelity, fmt.coding, activity
            )
            for fmt in self.formats
        }
        total = sum(per_format.values())
        cores = self.transcoder.cores_required
        return IngestionReport(
            stream=self.stream,
            bytes_per_second=total,
            bytes_per_day=total * DAY,
            cores_required=cores,
            cpu_utilization_percent=cores * 100.0,
            per_format_bytes_per_second=per_format,
        )
