"""Property tests for shard placement and rebalancing (Hypothesis).

Three families of invariants:

* placement is *deterministic* per policy — replaying the same placement
  sequence onto a fresh array reproduces the exact assignment;
* each policy honors its imbalance bound (round-robin: per-shard key
  counts within one; locality over hot segments: byte loads within one
  segment of each other);
* :func:`plan_rebalance` never loses or duplicates a key, conserves every
  key's footprint, and leaves the byte imbalance no larger than the
  largest single key.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.sharding import (
    HashPlacement,
    LocalityAwarePlacement,
    PLACEMENTS,
    RoundRobinPlacement,
    ShardedDiskArray,
    plan_rebalance,
)

N_SHARDS = int(os.environ.get("SHARDS", "4"))

# One placement request: (stream, format text, index, bytes, activity).
_placements = st.lists(
    st.tuples(
        st.sampled_from(["cam00", "cam01", "dash"]),
        st.sampled_from(["f-raw", "f-enc", "f-low"]),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=1, max_value=1_000_000),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    ),
    max_size=40,
)

_shard_counts = st.integers(min_value=1, max_value=8)


def _play(policy, n_shards, placements):
    array = ShardedDiskArray(n_shards, placement=policy)
    for stream, fmt, index, nbytes, activity in placements:
        array.place(stream, fmt, index, float(nbytes), activity)
    return array


@given(placements=_placements, n_shards=_shard_counts,
       policy_name=st.sampled_from(sorted(PLACEMENTS)))
@settings(max_examples=60, deadline=None)
def test_assignment_is_deterministic_per_policy(placements, n_shards,
                                                policy_name):
    """Replaying one placement history gives the same assignment, for
    every policy — including the stateful round-robin counter."""
    a = _play(PLACEMENTS[policy_name](), n_shards, placements)
    b = _play(PLACEMENTS[policy_name](), n_shards, placements)
    assert a.assignments() == b.assignments()


@given(placements=_placements, n_shards=_shard_counts)
@settings(max_examples=60, deadline=None)
def test_round_robin_key_counts_within_one(placements, n_shards):
    array = _play(RoundRobinPlacement(), n_shards, placements)
    counts = array.shard_keys
    assert max(counts) - min(counts) <= 1


@given(placements=_placements, n_shards=_shard_counts)
@settings(max_examples=60, deadline=None)
def test_hash_ignores_arrival_order(placements, n_shards):
    forward = _play(HashPlacement(), n_shards, placements)
    backward = _play(HashPlacement(), n_shards, list(reversed(placements)))
    # Shard choice is order-independent; recorded bytes legitimately keep
    # the last overwrite, so only the placement is compared.
    assert {k: s for k, (s, _) in forward.assignments().items()} == {
        k: s for k, (s, _) in backward.assignments().items()
    }


@given(placements=_placements, n_shards=_shard_counts)
@settings(max_examples=60, deadline=None)
def test_colocating_policies_keep_segment_formats_together(placements,
                                                           n_shards):
    """Hash and locality placement put all formats of one (stream, index)
    segment on one shard."""
    for policy in (HashPlacement(), LocalityAwarePlacement()):
        array = _play(policy, n_shards, placements)
        by_segment = {}
        for (stream, fmt, index), (shard, _) in array.assignments().items():
            by_segment.setdefault((stream, index), set()).add(shard)
        assert all(len(shards) == 1 for shards in by_segment.values())


@given(
    segments=st.lists(
        st.tuples(st.integers(min_value=0, max_value=63),
                  st.integers(min_value=1, max_value=1_000_000)),
        max_size=30, unique_by=lambda s: s[0],
    ),
    n_shards=_shard_counts,
)
@settings(max_examples=60, deadline=None)
def test_locality_hot_byte_imbalance_within_one_segment(segments, n_shards):
    """All-hot placement is greedy least-loaded: shard byte loads can
    never differ by more than the largest single segment."""
    array = ShardedDiskArray(n_shards, placement=LocalityAwarePlacement())
    for index, nbytes in segments:
        array.place("cam", "f", index, float(nbytes), activity=1.0)
    if segments:
        assert array.byte_imbalance <= max(n for _, n in segments)
    else:
        assert array.byte_imbalance == 0.0


@given(placements=_placements, n_shards=_shard_counts,
       policy_name=st.sampled_from(sorted(PLACEMENTS)))
@settings(max_examples=60, deadline=None)
def test_rebalance_plan_conserves_keys_and_bytes(placements, n_shards,
                                                 policy_name):
    """Applying the rebalance plan relabels shards only: same key set,
    same per-key bytes, total bytes conserved, imbalance bounded."""
    array = _play(PLACEMENTS[policy_name](), n_shards, placements)
    before = array.assignments()
    moves = plan_rebalance(before, n_shards)

    after = dict(before)
    for key, src, dst in moves:
        shard, nbytes = after[key]
        assert shard == src  # the plan moves keys from where they are
        assert 0 <= dst < n_shards
        after[key] = (dst, nbytes)

    assert set(after) == set(before)  # no key lost or duplicated
    assert {k: b for k, (_, b) in after.items()} == {
        k: b for k, (_, b) in before.items()
    }  # footprints conserved

    def loads(assignment):
        totals = [0.0] * n_shards
        for shard, nbytes in assignment.values():
            totals[shard] += nbytes
        return totals

    assert sum(loads(after)) == sum(loads(before))
    gap_before = max(loads(before)) - min(loads(before))
    gap_after = max(loads(after)) - min(loads(after))
    assert gap_after <= gap_before
    if before:
        # The greedy mover guarantees the residual gap is below the
        # largest single key (the best any per-key scheme can promise).
        assert gap_after <= max(b for _, b in before.values())


@given(placements=_placements, n_shards=_shard_counts)
@settings(max_examples=40, deadline=None)
def test_rebalance_applied_to_array_matches_plan(placements, n_shards):
    """Reassigning through the array keeps its books consistent with a
    from-scratch replay of the final assignment."""
    array = _play(HashPlacement(), n_shards, placements)
    moves = plan_rebalance(array.assignments(), n_shards)
    for (stream, fmt, index), src, dst in moves:
        assert array.reassign(stream, fmt, index, dst) == src
    rebuilt = [0.0] * n_shards
    for _, (shard, nbytes) in array.assignments().items():
        rebuilt[shard] += nbytes
    for i in range(n_shards):
        assert array.shard_bytes[i] == rebuilt[i]


# ---------------------------------------------------------------------------
# Replicated arrays under random fail -> rebuild interleavings
# ---------------------------------------------------------------------------

# One scripted operation: (op, key index, shard-ish integer).  The shard
# argument is folded modulo the array size; inapplicable ops are no-ops,
# so every generated script is valid on every array.
_fault_ops = st.lists(
    st.tuples(
        st.sampled_from(["place", "fail", "recover", "rebuild",
                         "forget", "reassign", "migrate"]),
        st.integers(min_value=0, max_value=11),
        st.integers(min_value=0, max_value=7),
    ),
    max_size=60,
)


def _check_books(array):
    """Byte conservation + locate/assignments/replica consistency."""
    per_shard_bytes = [0.0] * array.n_shards
    per_shard_keys = [0] * array.n_shards
    for key, replicas in array.replica_assignments().items():
        assert replicas, f"{key} placed but replica-less"
        assert len(set(replicas)) == len(replicas), "duplicate replica shard"
        assert array.locate(*key) == replicas[0], "primary drifted"
        nbytes = array.assignments()[key][1]
        for shard in replicas:
            per_shard_bytes[shard] += nbytes
            per_shard_keys[shard] += 1
    for i in range(array.n_shards):
        assert array.shard_bytes[i] == pytest.approx(per_shard_bytes[i])
        assert array.shard_keys[i] == per_shard_keys[i]
    # A failed shard holds no live replica bookkeeping at all.
    for i in array.failed_shards:
        assert per_shard_bytes[i] == 0.0
        assert per_shard_keys[i] == 0


@given(ops=_fault_ops, n_shards=st.integers(min_value=2, max_value=6))
@settings(max_examples=60, deadline=None)
def test_fail_rebuild_interleavings_keep_books_consistent(ops, n_shards):
    """reassign/migrate/forget interleaved with shard failures and replica
    rebuilds conserve bytes and keep locate/assignments consistent."""
    from repro.errors import ShardFailedError, StorageError

    array = ShardedDiskArray(n_shards, placement="round-robin",
                             replication=min(2, n_shards))
    pending = []  # (key, nbytes, source) rebuild work from failures
    for op, idx, arg in ops:
        shard = arg % n_shards
        key = ("cam", "fmt", idx)
        if op == "place":
            if len(array.failed_shards) < n_shards:
                array.place(*key, float((idx + 1) * 10))
        elif op == "fail":
            pending.extend(array.fail_shard(shard))
        elif op == "recover":
            array.recover_shard(shard)
        elif op == "rebuild" and pending:
            wkey, nbytes, _source = pending.pop(0)
            if array.locate(*wkey) is None:
                continue  # lost or forgotten in the meantime
            holders = set(array.replicas(*wkey))
            dests = [i for i in range(n_shards)
                     if not array.is_failed(i) and i not in holders]
            if dests:
                array.add_replica(*wkey, dests[0])
        elif op == "forget":
            array.forget(*key)
        elif op in ("reassign", "migrate"):
            src = array.locate(*key)
            if src is None:
                continue
            if shard == src:
                assert array.reassign(*key, shard) == src  # no-op
            elif array.is_failed(shard) or shard in array.replicas(*key):
                with pytest.raises(StorageError):
                    array.reassign(*key, shard)
            else:
                array.reassign(*key, shard)
        _check_books(array)
    # End state: no key ever references a failed shard, and total bytes
    # equal the per-key footprints times their live replica counts.
    total = sum(
        array.assignments()[key][1] * len(replicas)
        for key, replicas in array.replica_assignments().items()
    )
    assert sum(array.shard_bytes) == pytest.approx(total)
