"""Multi-tenant query analysis: per-query latency, fairness, utilization.

The concurrent executor returns per-query :class:`~repro.query.scheduler.
QueryOutcome` objects and aggregate :class:`~repro.query.scheduler.
ExecutorStats`; this module turns them into the report a store operator
reads — who waited, how unfair the run was, and how busy each shared
resource got.

A query's *service time* (its task chain run serially) equals its
uncontended latency, so ``slowdown = latency / service`` measures the cost
of contention without rerunning anything in isolation.  Fairness over the
slowdowns uses Jain's index: 1.0 means every query was slowed equally, and
``1/n`` means one query absorbed the entire penalty.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.query.scheduler import ExecutorStats, QueryOutcome


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 when all values are equal, 1/n at worst.

    Non-finite values are excluded — a zero-service query's slowdown is
    ``inf`` (pure queueing), which no ratio-of-sums can fold in.  With
    nothing finite left the index is 1.0 by the all-equal convention.
    """
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return 1.0
    total = sum(finite)
    squares = sum(v * v for v in finite)
    if squares <= 0:
        return 1.0
    return (total * total) / (len(finite) * squares)


@dataclass(frozen=True)
class QueryLatencyRow:
    """One query's end-to-end outcome under contention."""

    label: str
    stream: str
    latency: float  # simulated seconds, admit to finish
    service: float  # uncontended serial time of the query's own tasks
    waited: float  # time spent queued for busy resources
    slowdown: float  # latency / service
    speed: float  # x realtime over the contended latency
    deadline_met: Optional[bool]  # None when no deadline was set


@dataclass(frozen=True)
class ConcurrencyReport:
    """Aggregate view of one concurrent run."""

    policy: str
    n_queries: int
    makespan: float
    rows: Tuple[QueryLatencyRow, ...]
    utilization: Dict[str, Optional[float]]  # per resource; None = unbounded
    core: str = "heap"  # executor core that produced the run
    events: int = 0  # task start/finish events processed
    wall_seconds: float = 0.0  # real seconds the executor core spent

    @property
    def events_per_second(self) -> float:
        """Real-time scheduling throughput of the executor core."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events / self.wall_seconds

    @property
    def mean_latency(self) -> float:
        return sum(r.latency for r in self.rows) / len(self.rows)

    @property
    def max_latency(self) -> float:
        return max(r.latency for r in self.rows)

    @property
    def mean_slowdown(self) -> float:
        """Mean over the finite slowdown rows (zero-service outcomes with
        positive latency report ``inf`` and are excluded; an all-infinite
        run reports 1.0 by convention — its harm lives in the latencies)."""
        finite = [r.slowdown for r in self.rows if math.isfinite(r.slowdown)]
        if not finite:
            return 1.0
        return sum(finite) / len(finite)

    @property
    def max_slowdown(self) -> float:
        return max(r.slowdown for r in self.rows)

    @property
    def fairness(self) -> float:
        """Jain's index over per-query slowdowns."""
        return jain_index([r.slowdown for r in self.rows])

    @property
    def deadline_misses(self) -> int:
        return sum(1 for r in self.rows if r.deadline_met is False)


def concurrency_report(
    outcomes: Sequence[QueryOutcome], stats: ExecutorStats
) -> ConcurrencyReport:
    """Build the operator-facing report of one concurrent run."""
    if not outcomes:
        raise ValueError("no outcomes: admit and run queries first")
    rows = tuple(
        QueryLatencyRow(
            label=o.session.label,
            stream=o.session.stream,
            latency=o.latency,
            service=o.service_seconds,
            waited=o.waited_seconds,
            slowdown=o.slowdown,
            speed=o.result.speed,
            deadline_met=o.deadline_met,
        )
        for o in outcomes
    )
    utilization = {
        name: stats.utilization(name) for name in stats.capacities
    }
    return ConcurrencyReport(
        policy=stats.policy,
        n_queries=stats.n_queries,
        makespan=stats.makespan,
        rows=rows,
        utilization=utilization,
        core=stats.core,
        events=stats.events,
        wall_seconds=stats.wall_seconds,
    )


def format_concurrency_table(report: ConcurrencyReport) -> str:
    """Render a concurrent run the way the paper renders its tables."""
    lines: List[str] = []
    lines.append(
        f"Concurrent run: {report.n_queries} queries, policy={report.policy}, "
        f"makespan={report.makespan:.3f}s"
    )
    header = (f"{'query':<28} {'stream':<12} {'latency':>9} {'service':>9} "
              f"{'waited':>9} {'slowdn':>7} {'speed':>9} {'dline':>6}")
    lines.append(header)
    lines.append("-" * len(header))
    for r in report.rows:
        deadline = "-" if r.deadline_met is None else ("ok" if r.deadline_met else "MISS")
        lines.append(
            f"{r.label:<28} {r.stream:<12} {r.latency:>9.3f} {r.service:>9.3f} "
            f"{r.waited:>9.3f} {r.slowdown:>6.2f}x {r.speed:>8.1f}x {deadline:>6}"
        )
    util = ", ".join(
        f"{name}={'--' if frac is None else f'{frac:.0%}'}"
        for name, frac in sorted(report.utilization.items())
    )
    lines.append(
        f"mean slowdown {report.mean_slowdown:.2f}x, fairness (Jain) "
        f"{report.fairness:.3f}, utilization: {util}"
    )
    if report.events:
        lines.append(
            f"executor [{report.core}]: {report.events} events in "
            f"{report.wall_seconds:.3f}s real "
            f"({report.events_per_second:,.0f} events/s)"
        )
    return "\n".join(lines)
