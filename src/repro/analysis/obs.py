"""Observability analysis: critical paths, queue depths, utilization.

The trace stream says what happened; these tables say what it *means*:

* :func:`critical_paths` attributes each query's latency to the resource
  that bound it — service plus queueing per resource, dominant one named
  — which is the per-query version of the paper's "where does simulated
  time go" argument (retrieval-bound vs decode-bound vs
  consumption-bound under contention);
* :func:`queue_depth_series` / :func:`utilization_rows` reconstruct, for
  every resource, how many tasks were running and how many were waiting
  at each change point of simulated time.  Waiting is recovered from the
  chain rule (a serial chain submits its next task the instant the
  previous one finishes), so no extra events are recorded;
* the ``format_*`` helpers render the fixed-width tables the CLI verbs
  (``trace export`` / ``metrics``) print.

Everything consumes the locked schema of :mod:`repro.obs.trace`; pass
``executor.trace_events``, a golden file's ``events`` list, or rows
reloaded from the columnar tier interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.trace import QuerySpan, intervals_from_events, query_spans

__all__ = [
    "CriticalPath",
    "critical_paths",
    "format_critical_path_table",
    "format_metrics_table",
    "format_queue_depth_table",
    "queue_depth_series",
    "utilization_rows",
]


@dataclass(frozen=True)
class CriticalPath:
    """Latency attribution of one query: which resource bound it."""

    span: QuerySpan

    @property
    def query(self) -> str:
        return self.span.query

    @property
    def bound_resource(self) -> str:
        return self.span.bound_resource

    @property
    def bound_seconds(self) -> float:
        r = self.span.bound_resource
        return (self.span.service_by_resource.get(r, 0.0)
                + self.span.wait_by_resource.get(r, 0.0))

    @property
    def bound_fraction(self) -> float:
        """Share of the query's latency spent on the binding resource."""
        latency = self.span.latency
        return self.bound_seconds / latency if latency > 0 else 0.0


def critical_paths(
    events: Sequence[Mapping[str, object]],
    start_time: Optional[float] = None,
) -> List[CriticalPath]:
    """Per-query critical-path attribution, in first-submission order."""
    return [CriticalPath(span) for span in query_spans(events, start_time)]


def queue_depth_series(
    events: Sequence[Mapping[str, object]],
    start_time: Optional[float] = None,
) -> Dict[str, List[Tuple[float, int, int]]]:
    """Per-resource ``(t, running, waiting)`` change points over sim time.

    ``running`` counts tasks holding the resource at ``t``; ``waiting``
    counts tasks submitted to it but not yet granted.  Both step only at
    change points, so the series is exact and compact.
    """
    deltas: Dict[str, Dict[float, List[int]]] = {}

    def bump(resource: str, t: float, running: int, waiting: int) -> None:
        slot = deltas.setdefault(resource, {}).setdefault(t, [0, 0])
        slot[0] += running
        slot[1] += waiting

    for iv in intervals_from_events(events, start_time):
        bump(iv.resource, iv.submit, 0, 1)
        bump(iv.resource, iv.start, 1, -1)
        bump(iv.resource, iv.end, -1, 0)

    series: Dict[str, List[Tuple[float, int, int]]] = {}
    for resource in sorted(deltas):
        running = waiting = 0
        points: List[Tuple[float, int, int]] = []
        for t in sorted(deltas[resource]):
            d_run, d_wait = deltas[resource][t]
            running += d_run
            waiting += d_wait
            points.append((t, running, waiting))
        series[resource] = points
    return series


def utilization_rows(
    events: Sequence[Mapping[str, object]],
    start_time: Optional[float] = None,
) -> List[Dict[str, object]]:
    """The queue-depth series flattened to columnar analytics rows."""
    rows: List[Dict[str, object]] = []
    for resource, points in queue_depth_series(events, start_time).items():
        for t, running, waiting in points:
            rows.append({
                "resource": resource, "t": t,
                "running": running, "waiting": waiting,
            })
    return rows


# ---------------------------------------------------------------------------
# Fixed-width tables for the CLI
# ---------------------------------------------------------------------------


def format_critical_path_table(paths: Sequence[CriticalPath]) -> str:
    """One row per query: latency, waits, and the binding resource."""
    lines = [f"{'query':<28} {'latency':>10} {'service':>10} {'waited':>10} "
             f"{'bound by':>10} {'share':>6}"]
    lines.append("-" * len(lines[0]))
    for cp in paths:
        s = cp.span
        tag = " [bg]" if s.background else ""
        lines.append(
            f"{(s.query + tag):<28} {s.latency:>9.3f}s "
            f"{s.service_seconds:>9.3f}s {s.waited_seconds:>9.3f}s "
            f"{cp.bound_resource:>10} {cp.bound_fraction * 100:>5.0f}%"
        )
    return "\n".join(lines)


def format_queue_depth_table(
    series: Dict[str, List[Tuple[float, int, int]]],
) -> str:
    """Per-resource peak/mean queue depth and peak concurrency summary."""
    lines = [f"{'resource':<12} {'peak run':>8} {'peak wait':>9} "
             f"{'mean wait':>9} {'points':>7}"]
    lines.append("-" * len(lines[0]))
    for resource, points in series.items():
        if not points:
            continue
        peak_run = max(r for _, r, _ in points)
        peak_wait = max(w for _, _, w in points)
        # Time-weighted mean waiting depth over the observed span.
        total = 0.0
        span = points[-1][0] - points[0][0]
        for (t0, _, w), (t1, _, _) in zip(points, points[1:]):
            total += w * (t1 - t0)
        mean_wait = total / span if span > 0 else 0.0
        lines.append(
            f"{resource:<12} {peak_run:>8} {peak_wait:>9} "
            f"{mean_wait:>9.2f} {len(points):>7}"
        )
    return "\n".join(lines)


def format_metrics_table(snapshot: Dict[str, Dict]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as a fixed-width table."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    if counters or gauges:
        header = f"{'metric':<38} {'type':>9} {'value':>14}"
        lines.append(header)
        lines.append("-" * len(header))
        for name, value in counters.items():
            lines.append(f"{name:<38} {'counter':>9} {value:>14,.0f}")
        for name, value in gauges.items():
            lines.append(f"{name:<38} {'gauge':>9} {value:>14.4f}")
    if histograms:
        if lines:
            lines.append("")
        header = (f"{'histogram':<38} {'count':>7} {'mean':>10} "
                  f"{'p50':>10} {'p95':>10} {'p99':>10}")
        lines.append(header)
        lines.append("-" * len(header))
        for name, h in histograms.items():
            lines.append(
                f"{name:<38} {h['count']:>7} {h['mean']:>10.4f} "
                f"{h['p50']:>10.4f} {h['p95']:>10.4f} {h['p99']:>10.4f}"
            )
    return "\n".join(lines)
