"""The regret-vs-oracle drift report (repro.analysis.drift).

The default scenario is the PR's acceptance bar: online evolution must
recover at least 60% of the oracle's retrieval-cost advantage over the
frozen plan on the two-phase drift workload.
"""

from types import SimpleNamespace

import pytest

from repro.analysis.drift import (
    DRIFT_PHASE1,
    DRIFT_PHASE2,
    drift_regret_report,
    format_drift_table,
    retrieval_seconds,
)
from repro.errors import ConfigurationError

RECOVERY_FLOOR = 0.60


@pytest.fixture(scope="module")
def report():
    return drift_regret_report()


def test_online_recovers_enough_of_the_oracle_advantage(report):
    assert report.drifted
    assert report.drift_score > 0.25
    # The frozen plan really pays for serving A-ops off the rich golden
    # format, and the oracle really is the floor.
    assert report.oracle_seconds < report.online_seconds
    assert report.online_seconds < report.frozen_seconds
    assert report.oracle_advantage > 0
    assert report.recovery >= RECOVERY_FLOOR


def test_evolution_summary_is_populated(report):
    ev = report.evolution
    assert ev is not None
    assert ev.epoch == 1
    assert ev.added  # the drifted mix needed at least one new format
    assert ev.reencoded_segments == report.n_segments * len(ev.added)
    assert ev.foreground_queries > 0


def test_phases_are_the_benchmark_queries(report):
    assert report.phase1 == DRIFT_PHASE1
    assert report.phase2 == DRIFT_PHASE2
    assert {c.operator for c in report.phase1} == {
        "Motion", "License", "OCR"}
    assert {c.operator for c in report.phase2} == {"Diff", "S-NN", "NN"}


def test_format_drift_table(report):
    text = format_drift_table(report)
    assert "frozen" in text and "oracle" in text and "online" in text
    assert "recovered" in text
    assert "drifted" in text
    for label in report.evolution.added:
        assert label in text


def test_offline_report_skips_the_online_arm():
    report = drift_regret_report(online=False, phase2_queries=4,
                                 detection_queries=1)
    assert report.online_seconds is None
    assert report.recovery is None
    assert report.evolution is None
    assert report.frozen_seconds > report.oracle_seconds
    text = format_drift_table(report)
    assert "online" not in text.split("arm", 1)[1].splitlines()[1]


def test_degenerate_query_budget_rejected():
    with pytest.raises(ConfigurationError):
        drift_regret_report(phase2_queries=4, detection_queries=4,
                            evolution_foreground=2)


def test_retrieval_seconds_ignores_background_outcomes():
    task = SimpleNamespace(kind="retrieve", duration=3.0)
    stage = SimpleNamespace(tasks=[task])

    def outcome(klass):
        session = SimpleNamespace(klass=klass,
                                  plan=SimpleNamespace(stages=[stage]))
        return SimpleNamespace(session=session)

    assert retrieval_seconds([outcome(0), outcome(1)]) == 3.0
