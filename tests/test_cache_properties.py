"""Hypothesis property tests for cache invariants.

Three invariants from the cache design:

* occupancy never exceeds the byte budget, whatever the op sequence;
* on a replayed trace, LRU hit count is monotone non-decreasing in
  capacity (the stack property — a bigger cache never hits less);
* eviction never removes an entry pinned by an in-flight single-flight
  waiter, under any policy and any insert pressure.
"""

from hypothesis import given, settings, strategies as st

from repro.cache import (
    ByteBudgetCache,
    CostAwarePolicy,
    LFUPolicy,
    LRUPolicy,
)

POLICIES = st.sampled_from([LRUPolicy, LFUPolicy, CostAwarePolicy])

# An op is (kind, key id, size): puts use the size, gets ignore it.
OPS = st.lists(
    st.tuples(st.sampled_from(["put", "get", "invalidate"]),
              st.integers(min_value=0, max_value=15),
              st.floats(min_value=0.0, max_value=40.0,
                        allow_nan=False, allow_infinity=False)),
    max_size=60,
)


@given(policy=POLICIES,
       capacity=st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False, allow_infinity=False),
       ops=OPS)
def test_occupancy_never_exceeds_capacity(policy, capacity, ops):
    cache = ByteBudgetCache(capacity, policy())
    for kind, kid, size in ops:
        key = ("s", kid)
        if kind == "put":
            cache.put(key, size, 1.0)
        elif kind == "get":
            cache.get(key)
        else:
            cache.invalidate("s", kid)
        assert cache.occupancy_bytes <= cache.capacity_bytes + 1e-9
    # occupancy equals the sum of resident entry sizes (no drift)
    assert abs(cache.occupancy_bytes
               - sum(e.nbytes for e in cache.entries())) < 1e-9


@given(trace=st.lists(st.integers(min_value=0, max_value=11),
                      min_size=1, max_size=120),
       capacities=st.lists(st.integers(min_value=1, max_value=14),
                           min_size=2, max_size=5))
def test_lru_hit_rate_monotone_in_capacity(trace, capacities):
    """The LRU stack property over uniform-size entries: replaying one
    trace through caches of growing capacity never loses hits."""

    def hits_at(n_slots):
        cache = ByteBudgetCache(float(n_slots), LRUPolicy())
        for kid in trace:
            if cache.get(("s", kid)) is None:
                cache.put(("s", kid), 1.0, 1.0)
        return cache.hits

    counts = [hits_at(n) for n in sorted(capacities)]
    assert counts == sorted(counts)


@given(policy=POLICIES,
       pinned=st.sets(st.integers(min_value=0, max_value=3),
                      min_size=1, max_size=4),
       ops=OPS)
@settings(max_examples=150)
def test_pinned_entries_survive_any_eviction_pressure(policy, pinned, ops):
    cache = ByteBudgetCache(100.0, policy())
    resident = set()
    for kid in pinned:
        # pinned single-flight entries: a follower still needs them
        if cache.put(("pinned", kid), 20.0, 1.0, pins=1):
            resident.add(("pinned", kid))
    for kind, kid, size in ops:
        key = ("s", kid)
        if kind == "put":
            cache.put(key, size, 1.0)
        else:
            cache.get(key)
        for pinned_key in resident:
            assert pinned_key in cache
    # once unpinned, the entries become ordinary victims again
    for pinned_key in resident:
        cache.unpin(pinned_key)
    for i in range(20):
        cache.put(("flood", i), 30.0, 50.0)
    assert cache.occupancy_bytes <= cache.capacity_bytes
