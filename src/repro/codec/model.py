"""Analytic codec response surfaces: encode cost, decode cost, size.

All constants below are calibrated so the model reproduces the qualitative
shapes of the paper's measurements:

* Figure 3a: across speed steps, ~40x encoding-speed range and ~2.5x size
  range; decoding speed varies mildly;
* Figure 3b: under sparse consumer sampling, smaller keyframe intervals
  speed decoding up to ~6x at the cost of a larger encoded video;
* Table 3b: the golden 720p/30fps "slowest" format decodes at a few tens of
  x realtime and costs ~1.4 MB per video second; image-quality steps change
  size by ~5x per step (Section 2.4).

Costs are expressed in *simulated CPU-seconds per video-second* on one core,
so "x realtime" speeds are simply their reciprocal.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional, Sequence

import numpy as np

from repro.codec.chunks import decoded_frame_fraction
from repro.errors import CodecError
from repro.video.coding import Coding
from repro.video.fidelity import Fidelity

#: Bits per pixel by image quality (CRF 0/23/40/50).  Each quality step is
#: roughly a 5x size change, matching the paper's observation for Fig. 4b.
BITS_PER_PIXEL: Dict[str, float] = {
    "best": 0.45,
    "good": 0.09,
    "bad": 0.018,
    "worst": 0.0045,
}

#: Encode-time multiplier per speed step (slowest first).  The ratio between
#: the extremes is 40x, matching Figure 3a.
ENCODE_TIME_FACTOR: Dict[str, float] = {
    "slowest": 8.0,
    "slow": 2.8,
    "med": 1.0,
    "fast": 0.42,
    "fastest": 0.2,
}

#: Size multiplier per speed step: faster presets compress less (~2.5x range).
SIZE_FACTOR: Dict[str, float] = {
    "slowest": 1.0,
    "slow": 1.12,
    "med": 1.35,
    "fast": 1.75,
    "fastest": 2.5,
}

#: Decode-time multiplier per speed step (mild; decoding is less sensitive).
DECODE_TIME_FACTOR: Dict[str, float] = {
    "slowest": 1.30,
    "slow": 1.15,
    "med": 1.00,
    "fast": 0.85,
    "fastest": 0.75,
}

#: Encode-time multiplier per image quality (CRF 0 searches harder).
QUALITY_ENCODE_FACTOR: Dict[str, float] = {
    "best": 1.8,
    "good": 1.0,
    "bad": 0.85,
    "worst": 0.75,
}

#: Extra bytes a keyframe costs relative to a predicted frame.
KEYFRAME_OVERHEAD = 9.0

#: Raw YUV420 pixel cost in bytes per pixel.
RAW_BYTES_PER_PIXEL = 1.5


class SurfaceCallCounter:
    """Counts codec response-surface evaluations.

    ``scalar`` counts one-point evaluations (the per-call path the planner
    used before the vectorized profiling plane); ``grid`` counts whole-grid
    batch evaluations.  The planner perf benchmark reads the deltas.
    """

    __slots__ = ("scalar", "grid")

    def __init__(self) -> None:
        self.scalar = 0
        self.grid = 0

    def reset(self) -> None:
        self.scalar = 0
        self.grid = 0

    @property
    def total(self) -> int:
        return self.scalar + self.grid


#: Process-wide accounting of codec-surface evaluations.
SURFACE_CALLS = SurfaceCallCounter()


@dataclass(frozen=True)
class CodecModel:
    """Codec response-surface model with tunable base constants.

    ``encode_ms_per_mp`` / ``decode_ms_per_mp`` are per-frame costs for one
    megapixel at the ``med`` speed step and ``good`` quality; fixed per-frame
    overheads model container/bitstream handling.
    """

    encode_ms_per_mp: float = 12.0
    encode_ms_fixed: float = 0.5
    decode_ms_per_mp: float = 1.05
    decode_ms_fixed: float = 0.15
    #: Maps content activity (see ContentModel) to a size multiplier.
    activity_size_base: float = 0.5
    activity_size_slope: float = 1.4

    # -- size ----------------------------------------------------------------

    def activity_factor(self, activity: float) -> float:
        """Size multiplier for a clip with mean frame-change ``activity``."""
        return self.activity_size_base + self.activity_size_slope * max(0.0, activity)

    def encoded_bytes_per_second(
        self, fidelity: Fidelity, coding: Coding, activity: float = 0.35
    ) -> float:
        """On-disk bytes per video second for an encoded storage format."""
        if coding.raw:
            return self.raw_bytes_per_second(fidelity)
        SURFACE_CALLS.scalar += 1
        kf = coding.keyframe_interval
        kf_factor = (1.0 + KEYFRAME_OVERHEAD / kf) / (1.0 + KEYFRAME_OVERHEAD / 250.0)
        bits = (
            fidelity.pixels
            * fidelity.fps
            * BITS_PER_PIXEL[fidelity.quality]
            * SIZE_FACTOR[coding.speed_step]
            * kf_factor
            * self.activity_factor(activity)
        )
        return bits / 8.0

    def raw_bytes_per_second(self, fidelity: Fidelity) -> float:
        """On-disk bytes per video second when storing raw YUV420 frames."""
        SURFACE_CALLS.scalar += 1
        return fidelity.pixels * RAW_BYTES_PER_PIXEL * fidelity.fps

    def raw_frame_bytes(self, fidelity: Fidelity) -> float:
        """Size of one raw frame at this fidelity."""
        return fidelity.pixels * RAW_BYTES_PER_PIXEL

    # -- encode cost -----------------------------------------------------------

    def encode_seconds_per_video_second(
        self, fidelity: Fidelity, coding: Coding
    ) -> float:
        """One-core CPU seconds to transcode one video second into SF<f,c>.

        Raw storage bypasses the encoder entirely; only a cheap resize/copy
        cost remains (an order of magnitude below real encoding).
        """
        SURFACE_CALLS.scalar += 1
        mp = fidelity.pixels / 1e6
        if coding.raw:
            return fidelity.fps * 0.05e-3 * (1.0 + mp)
        per_frame_ms = (
            (self.encode_ms_fixed + self.encode_ms_per_mp * mp)
            * ENCODE_TIME_FACTOR[coding.speed_step]
            * QUALITY_ENCODE_FACTOR[fidelity.quality]
        )
        return fidelity.fps * per_frame_ms / 1000.0

    def encode_speed(self, fidelity: Fidelity, coding: Coding) -> float:
        """Encoding speed in x realtime on one core."""
        cost = self.encode_seconds_per_video_second(fidelity, coding)
        return float("inf") if cost <= 0 else 1.0 / cost

    # -- decode cost -----------------------------------------------------------

    def decode_frame_seconds(self, fidelity: Fidelity, coding: Coding) -> float:
        """CPU seconds to decode a single frame of SF<f,c>."""
        if coding.raw:
            raise CodecError("raw storage formats are read, not decoded")
        SURFACE_CALLS.scalar += 1
        mp = fidelity.pixels / 1e6
        per_frame_ms = (
            self.decode_ms_fixed + self.decode_ms_per_mp * mp
        ) * DECODE_TIME_FACTOR[coding.speed_step]
        return per_frame_ms / 1000.0

    def consumer_stride(
        self, stored: Fidelity, consumer_sampling: Fraction
    ) -> int:
        """Sampling stride of a consumer, measured in *stored* frames.

        A consumer sampling 1/30 of the ingest rate over a store holding
        1/6 of the ingest rate touches one stored frame in five.
        """
        if consumer_sampling > stored.sampling:
            raise CodecError(
                f"consumer sampling {consumer_sampling} exceeds stored "
                f"sampling {stored.sampling}"
            )
        ratio = stored.sampling / consumer_sampling
        return max(1, int(ratio))

    def decode_seconds_per_video_second(
        self,
        stored: Fidelity,
        coding: Coding,
        consumer_sampling: Optional[Fraction] = None,
    ) -> float:
        """CPU seconds to decode one video second for a consumer.

        When the consumer samples sparsely relative to the stored frame rate,
        whole chunks can be skipped (Figure 3b); the exact decoded fraction
        comes from :func:`repro.codec.chunks.decoded_frame_fraction`.
        """
        if coding.raw:
            raise CodecError("raw storage formats are read, not decoded")
        if consumer_sampling is None:
            consumer_sampling = stored.sampling
        stride = self.consumer_stride(stored, consumer_sampling)
        fraction = decoded_frame_fraction(stride, coding.keyframe_interval)
        frames = stored.fps * fraction
        return frames * self.decode_frame_seconds(stored, coding)

    def decode_speed(
        self,
        stored: Fidelity,
        coding: Coding,
        consumer_sampling: Optional[Fraction] = None,
    ) -> float:
        """Decoding speed in x realtime for a consumer of this format."""
        cost = self.decode_seconds_per_video_second(stored, coding, consumer_sampling)
        return float("inf") if cost <= 0 else 1.0 / cost

    # -- batch surfaces (the vectorized profiling plane) -----------------------
    #
    # Each grid method evaluates a whole (fidelity x coding) surface in one
    # NumPy pass.  The elementwise operation order deliberately mirrors the
    # scalar methods above so grid cells are bit-identical to per-call
    # results — plan parity depends on it.

    @staticmethod
    def _fidelity_columns(fidelities: Sequence[Fidelity]):
        pixels = np.array([f.pixels for f in fidelities], dtype=np.float64)
        fps = np.array([f.fps for f in fidelities], dtype=np.float64)
        return pixels, fps

    def encoded_bytes_per_second_grid(
        self,
        fidelities: Sequence[Fidelity],
        codings: Sequence[Coding],
        activity: float = 0.35,
    ) -> np.ndarray:
        """``encoded_bytes_per_second`` over a (fidelity x coding) grid."""
        SURFACE_CALLS.grid += 1
        pixels, fps = self._fidelity_columns(fidelities)
        bpp = np.array([BITS_PER_PIXEL[f.quality] for f in fidelities])
        size_f = np.array([SIZE_FACTOR[c.speed_step] for c in codings])
        kf_f = np.array([
            (1.0 + KEYFRAME_OVERHEAD / c.keyframe_interval)
            / (1.0 + KEYFRAME_OVERHEAD / 250.0)
            for c in codings
        ])
        bits = (
            ((pixels * fps * bpp)[:, None] * size_f[None, :])
            * kf_f[None, :]
            * self.activity_factor(activity)
        )
        return bits / 8.0

    def raw_bytes_per_second_vector(
        self, fidelities: Sequence[Fidelity]
    ) -> np.ndarray:
        """``raw_bytes_per_second`` over a fidelity axis."""
        SURFACE_CALLS.grid += 1
        pixels, fps = self._fidelity_columns(fidelities)
        return pixels * RAW_BYTES_PER_PIXEL * fps

    def encode_seconds_grid(
        self, fidelities: Sequence[Fidelity], codings: Sequence[Coding]
    ) -> np.ndarray:
        """``encode_seconds_per_video_second`` over a (fidelity x coding) grid."""
        SURFACE_CALLS.grid += 1
        pixels, fps = self._fidelity_columns(fidelities)
        mp = pixels / 1e6
        enc_f = np.array([ENCODE_TIME_FACTOR[c.speed_step] for c in codings])
        q_f = np.array([QUALITY_ENCODE_FACTOR[f.quality] for f in fidelities])
        per_frame_ms = (
            (self.encode_ms_fixed + self.encode_ms_per_mp * mp)[:, None]
            * enc_f[None, :]
            * q_f[:, None]
        )
        return fps[:, None] * per_frame_ms / 1000.0

    def raw_encode_seconds_vector(
        self, fidelities: Sequence[Fidelity]
    ) -> np.ndarray:
        """Raw-path ``encode_seconds_per_video_second`` over a fidelity axis."""
        SURFACE_CALLS.grid += 1
        pixels, fps = self._fidelity_columns(fidelities)
        mp = pixels / 1e6
        return fps * 0.05e-3 * (1.0 + mp)

    def decode_frame_seconds_grid(
        self, fidelities: Sequence[Fidelity], codings: Sequence[Coding]
    ) -> np.ndarray:
        """``decode_frame_seconds`` over a (fidelity x coding) grid."""
        SURFACE_CALLS.grid += 1
        pixels, _ = self._fidelity_columns(fidelities)
        mp = pixels / 1e6
        dec_f = np.array([DECODE_TIME_FACTOR[c.speed_step] for c in codings])
        per_frame_ms = (
            (self.decode_ms_fixed + self.decode_ms_per_mp * mp)[:, None]
            * dec_f[None, :]
        )
        return per_frame_ms / 1000.0


#: The model instance shared by default across the library.
DEFAULT_CODEC = CodecModel()
