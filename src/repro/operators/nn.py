"""NN: generic full neural network (YOLOv2 in the paper).

The full network is the expensive last stage of Query A.  Being deep and
trained on diverse data, it is robust: it detects smaller objects than the
specialized shallow net and tolerates lower image quality, but each frame
costs milliseconds of GPU time almost independent of input resolution
(inputs are resized into the network anyway), so its consumption speed is
dominated by the frame sampling rate.
"""

from __future__ import annotations

from repro.operators.detector import DetectorOperator


class NNOperator(DetectorOperator):
    """Generic deep NN detector, e.g. YOLOv2 [Redmon et al.]."""

    name = "NN"
    platform = "gpu"

    # Cost: fixed multi-millisecond inference, mild resolution scaling.
    cost_base = 7.2e-3
    cost_per_mp = 2.4e-3
    cost_gamma = 0.6

    target_kinds = ("car", "person")
    feature_scale = 1.0
    theta = 2.55  # robust to small objects
    width = 0.5
    quality_alpha = 1.0  # deep nets tolerate compression
    fp_base = 0.02
