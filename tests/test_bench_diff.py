"""Tests for the BENCH.json trajectory diff (``python -m repro bench-diff``).

The diff is the CI perf gate, so its edge cases are load-bearing: cells
present on one side only must report-but-not-gate, honest zero
throughput (sub-resolution wall clock) must be excluded rather than
compared, and the tolerance boundary must be exact.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.bench import (
    DEFAULT_TOLERANCE,
    CellDelta,
    diff_bench,
    format_bench_diff,
    load_bench,
)
from repro.cli import main
from repro.query.scheduler import ExecutorStats


def _bench(metrics):
    return {"schema": 1, "tests": {}, "metrics": metrics}


def _cell(eps, wall=1.0):
    fields = {"wall_seconds": wall}
    if eps is not None:
        fields["events_per_second"] = eps
    return fields


class TestDiffBench:
    def test_flat_run_is_ok(self):
        old = _bench({"a": _cell(100.0), "b": _cell(200.0)})
        diff = diff_bench(old, old)
        assert diff.ok
        assert [d.ratio for d in diff.deltas] == [1.0, 1.0]

    def test_regression_beyond_tolerance_fails(self):
        old = _bench({"a": _cell(100.0)})
        new = _bench({"a": _cell(60.0)})  # 0.60x < 0.70x floor
        diff = diff_bench(old, new, tolerance=0.30)
        assert not diff.ok
        assert [d.cell for d in diff.regressions] == ["a"]

    def test_tolerance_boundary_is_strict(self):
        # Exactly at the floor is allowed; any lower regresses.
        old = _bench({"a": _cell(100.0)})
        assert diff_bench(old, _bench({"a": _cell(70.0)}),
                          tolerance=0.30).ok
        assert not diff_bench(old, _bench({"a": _cell(69.9)}),
                              tolerance=0.30).ok

    def test_improvement_never_gates(self):
        old = _bench({"a": _cell(100.0)})
        new = _bench({"a": _cell(500.0)})
        assert diff_bench(old, new).ok

    def test_one_sided_cells_are_reported_not_gated(self):
        old = _bench({"gone": _cell(100.0)})
        new = _bench({"fresh": _cell(1.0)})
        diff = diff_bench(old, new)
        assert diff.ok
        by_cell = {d.cell: d for d in diff.deltas}
        assert by_cell["fresh"].excluded == "new cell (no baseline)"
        assert by_cell["gone"].excluded == "cell gone from new run"
        assert by_cell["fresh"].ratio is None
        assert by_cell["gone"].ratio is None

    def test_sub_resolution_zero_is_excluded(self):
        # events_per_second == 0.0 means wall_seconds was below the timer
        # resolution — an honest zero, not an infinite regression.
        old = _bench({"a": _cell(100.0)})
        new = _bench({"a": _cell(0.0, wall=0.0)})
        diff = diff_bench(old, new)
        assert diff.ok
        assert "sub-resolution" in diff.deltas[0].excluded

    def test_cell_without_throughput_is_excluded(self):
        # e.g. the PR 5 speedup cell records only derived ratios.
        old = _bench({"a": _cell(None)})
        new = _bench({"a": _cell(50.0)})
        diff = diff_bench(old, new)
        assert diff.ok
        assert diff.deltas[0].excluded == "no events_per_second recorded"

    def test_default_tolerance_matches_ci_gate(self):
        assert DEFAULT_TOLERANCE == 0.30

    def test_core_change_is_excluded_not_gated(self):
        # A cell that switched executor cores between runs is a dispatch
        # change — report it, never compare it as a regression.
        old = _bench({"a": dict(_cell(1000.0), core="heap")})
        new = _bench({"a": dict(_cell(100.0), core="fastpath")})
        diff = diff_bench(old, new)
        assert diff.ok
        assert "core changed (heap -> fastpath)" in diff.deltas[0].excluded

    def test_same_core_still_gates(self):
        old = _bench({"a": dict(_cell(1000.0), core="heap", shards=4,
                                queries=64)})
        new = _bench({"a": dict(_cell(100.0), core="heap", shards=4,
                                queries=64)})
        diff = diff_bench(old, new)
        assert not diff.ok

    def test_old_baseline_without_metadata_is_compatible(self):
        # The committed baseline predates the core/shards/queries fields;
        # a new self-describing run must still gate against it.
        old = _bench({"a": _cell(100.0)})
        new = _bench({"a": dict(_cell(50.0), core="heap", shards=4,
                                queries=64)})
        diff = diff_bench(old, new, tolerance=0.30)
        assert not diff.ok  # compared (and regressed), not excluded
        d = diff.deltas[0]
        assert d.old_meta == {}
        assert d.new_meta == {"core": "heap", "shards": 4, "queries": 64}


class TestCellDelta:
    def test_ratio_none_when_old_missing(self):
        d = CellDelta("a", None, 5.0, None, 1.0)
        assert d.ratio is None
        assert not d.regressed(0.0)

    def test_regressed_uses_ratio(self):
        d = CellDelta("a", 100.0, 50.0, 1.0, 1.0)
        assert d.ratio == 0.5
        assert d.regressed(0.30)
        assert not d.regressed(0.60)


class TestFormatting:
    def test_ok_verdict_counts_compared_cells(self):
        old = _bench({"a": _cell(100.0), "b": _cell(None)})
        text = format_bench_diff(diff_bench(old, old))
        assert "OK: 1 cell(s) compared" in text
        assert "[excluded: no events_per_second recorded]" in text

    def test_regression_verdict_names_the_cell(self):
        old = _bench({"a": _cell(100.0)})
        new = _bench({"a": _cell(10.0)})
        text = format_bench_diff(diff_bench(old, new))
        assert "REGRESSION: a at 0.10x of baseline" in text

    def test_metadata_column_renders_and_defaults_to_dashes(self):
        old = _bench({"a": _cell(100.0),
                      "b": dict(_cell(100.0), core="fastpath", shards=4,
                                queries=4096)})
        text = format_bench_diff(diff_bench(old, old))
        assert "config" in text
        assert "fastpath s4 q4096" in text
        assert "--" in text  # cell 'a' declares no metadata


class TestLoadBench:
    def test_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "metrics": {}}))
        with pytest.raises(ValueError, match="unsupported BENCH schema"):
            load_bench(str(path))


class TestCli:
    def _write(self, tmp_path, name, metrics):
        path = tmp_path / name
        path.write_text(json.dumps(_bench(metrics)))
        return str(path)

    def test_exit_zero_on_ok(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", {"a": _cell(100.0)})
        new = self._write(tmp_path, "new.json", {"a": _cell(120.0)})
        assert main(["bench-diff", old, new]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", {"a": _cell(100.0)})
        new = self._write(tmp_path, "new.json", {"a": _cell(10.0)})
        assert main(["bench-diff", old, new]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_tolerance_widens_the_gate(self, tmp_path):
        old = self._write(tmp_path, "old.json", {"a": _cell(100.0)})
        new = self._write(tmp_path, "new.json", {"a": _cell(50.0)})
        assert main(["bench-diff", old, new]) == 1
        assert main(["bench-diff", old, new, "--tolerance", "0.6"]) == 0

    def test_rejects_bad_tolerance(self, tmp_path):
        old = self._write(tmp_path, "old.json", {})
        with pytest.raises(SystemExit, match="tolerance"):
            main(["bench-diff", old, old, "--tolerance", "1.5"])

    def test_missing_file_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="bench-diff:"):
            main(["bench-diff", str(tmp_path / "nope.json"),
                  str(tmp_path / "nope.json")])

    def test_committed_baseline_loads(self):
        data = load_bench("benchmarks/BENCH_BASELINE.json")
        smoke = data["metrics"]["executor_scale/smoke_q64_s4"]
        assert smoke["events_per_second"] > 0


def test_events_per_second_honest_on_zero_wall():
    stats = ExecutorStats(
        policy="fifo", n_queries=1, makespan=1.0, capacities={},
        busy_seconds={}, wall_seconds=0.0, events=128, core="heap",
    )
    assert stats.events_per_second == 0.0
