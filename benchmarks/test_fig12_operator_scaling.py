"""Figure 12: transcoding cost does not scale up with operator count.

Adding operators to the library (in Table 2 order) grows the ingestion
cost only until the storage-format set covers the demand space; further
operators share existing formats and the cost plateaus.
"""

from repro.core.config import derive_configuration
from repro.operators.library import TABLE2_ORDER, default_library


def test_fig12_ingest_cost_plateaus(benchmark, record):
    def sweep():
        rows = []
        for n in range(1, len(TABLE2_ORDER) + 1):
            library = default_library(names=TABLE2_ORDER[:n])
            config = derive_configuration(library)
            rows.append((n, TABLE2_ORDER[n - 1],
                         config.plan.ingest_cores * 100.0,
                         len(config.plan.formats)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [f"{'#ops':>5} {'added':>9} {'CPU %':>8} {'#SFs':>5}"]
    for n, op, cpu, sfs in rows:
        lines.append(f"{n:>5} {op:>9} {cpu:>8.0f} {sfs:>5}")
    record("Figure 12 — operator scaling", "\n".join(lines))

    cpus = [r[2] for r in rows]
    # The cost stabilizes in the tail: the last additions are cheap
    # relative to the growth at the head (the paper's plateau beyond 5).
    head_growth = max(cpus[:5]) - min(cpus[:5])
    tail_growth = max(cpus[5:]) - min(cpus[5:])
    assert tail_growth <= max(head_growth, 0.35 * max(cpus))
    # And the last operator adds almost nothing.
    assert cpus[-1] <= cpus[-2] * 1.25 + 1.0
