"""The command-line interface."""

import pytest

from repro.cli import main


def test_datasets_lists_all_six(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    for name in ("jackson", "miami", "tucson", "dashcam", "park", "airport"):
        assert name in out


def test_focus_command(capsys):
    assert main(["focus", "--selectivity", "0.01"]) == 0
    out = capsys.readouterr().out
    assert "r = 3" in out


def test_configure_command(capsys):
    assert main(["configure", "--operators", "Motion,License,OCR"]) == 0
    out = capsys.readouterr().out
    assert "SFg" in out
    assert "ingest cost" in out


def test_configure_with_storage_budget(capsys):
    assert main([
        "configure", "--operators", "Motion,License",
        "--storage-budget-tb", "1.0",
    ]) == 0
    out = capsys.readouterr().out
    assert "decay factor" in out


def test_query_command(capsys):
    assert main([
        "query", "B", "--operators", "Motion,License,OCR",
        "--dataset", "dashcam", "--accuracy", "0.8",
    ]) == 0
    out = capsys.readouterr().out
    assert "x realtime" in out
    assert "Motion" in out


def test_ingest_and_execute_roundtrip(tmp_path, capsys):
    workdir = str(tmp_path / "store")
    assert main([
        "ingest", "--operators", "Motion,License,OCR",
        "--workdir", workdir, "--dataset", "dashcam", "--segments", "4",
    ]) == 0
    assert main([
        "execute", "B", "--operators", "Motion,License,OCR",
        "--workdir", workdir, "--dataset", "dashcam",
        "--accuracy", "0.8", "--t0", "0", "--t1", "32",
    ]) == 0
    out = capsys.readouterr().out
    assert "ingested 4 segments" in out
    assert "executed query" in out


def test_unknown_command_fails():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
