"""The tiered retrieval cache end to end: parity, single-flight dedup,
warm-cache speedups, and invalidation on erosion and re-ingest."""

import pytest

from repro.cache import CacheConfig, TierConfig
from repro.codec.decoder import Decoder, DecoderPool
from repro.core.store import VStore
from repro.operators.library import default_library
from repro.query.cascade import QUERY_A
from repro.query.scheduler import OperatorContextPool
from repro.storage.disk import DiskBandwidthPool
from repro.units import DAY, KB, MB

LIB_NAMES = ("Diff", "S-NN", "NN")
SPAN = 32.0
N_SEGMENTS = 4


def _build(workdir, cache_config=None, **kwargs):
    store = VStore(workdir=str(workdir), cache_config=cache_config,
                   library=default_library(names=LIB_NAMES), **kwargs)
    store.configure()
    store.ingest("jackson", n_segments=N_SEGMENTS)
    return store


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """Uncached store plus its single-query and 8-query outcomes."""
    store = _build(tmp_path_factory.mktemp("ref"))
    single = store.execute("A", dataset="jackson", accuracy=0.8,
                           t0=0.0, t1=SPAN)
    many = store.execute_many(
        [dict(query="A", dataset="jackson", accuracy=0.8, t0=0.0, t1=SPAN)
         for _ in range(8)],
        disk_pool=DiskBandwidthPool(1), decoder_pool=DecoderPool(2),
        operator_pool=OperatorContextPool(4),
    )
    yield store, single, many
    store.close()


def _pools():
    return dict(disk_pool=DiskBandwidthPool(1), decoder_pool=DecoderPool(2),
                operator_pool=OperatorContextPool(4))


def _assert_same_outputs(a, b):
    assert a.result.positives_per_stage == b.result.positives_per_stage
    assert a.result.segments_per_stage == b.result.segments_per_stage


class TestParity:
    """With any cache configuration, query outputs are bit-identical."""

    def test_cold_cache_single_query_is_bit_identical(self, tmp_path,
                                                      reference):
        _, single, _ = reference
        store = _build(tmp_path / "w",
                       CacheConfig(single_flight=False))
        result = store.execute("A", dataset="jackson", accuracy=0.8,
                               t0=0.0, t1=SPAN)
        assert result.positives_per_stage == single.positives_per_stage
        assert result.segments_per_stage == single.segments_per_stage
        # No committed entries and no dedup: even the timing matches.
        assert result.compute_seconds == single.compute_seconds

    @pytest.mark.parametrize("config", [
        CacheConfig(),
        CacheConfig(policy="lfu"),
        CacheConfig(policy="cost"),
        CacheConfig(frame_capacity_bytes=64.0 * KB,
                    result_capacity_bytes=1.0 * KB),  # heavy eviction
        CacheConfig(single_flight=False),
        CacheConfig(tiering=TierConfig(promote_accesses=1)),
    ], ids=["lru", "lfu", "cost", "tiny", "no-single-flight", "tiering"])
    def test_outputs_identical_under_16_concurrent_queries(
            self, tmp_path, reference, config):
        _, _, many = reference
        store = _build(tmp_path / "w", config)
        specs = [dict(query="A", dataset="jackson", accuracy=0.8,
                      t0=0.0, t1=SPAN) for _ in range(16)]
        # cold run, then a warm repeat — outputs must never change
        for _ in range(2):
            outcomes = store.execute_many(specs, **_pools())
            for got, want in zip(outcomes, many + many):
                _assert_same_outputs(got, want)

    def test_warm_cache_repeat_is_bit_identical_and_faster(self, tmp_path,
                                                           reference):
        _, single, _ = reference
        store = _build(tmp_path / "w", CacheConfig())
        cold = store.execute("A", dataset="jackson", accuracy=0.8,
                             t0=0.0, t1=SPAN)
        warm = store.execute("A", dataset="jackson", accuracy=0.8,
                             t0=0.0, t1=SPAN)
        for result in (cold, warm):
            assert result.positives_per_stage == single.positives_per_stage
        assert warm.compute_seconds < cold.compute_seconds
        stats = store.cache_stats()
        # Committed results make the warm stages free — and their
        # retrievals are skipped outright (the frames are never needed).
        assert stats.results.hits > 0
        assert stats.seconds_saved > 0

    def test_frame_tier_serves_when_results_do_not_fit(self, tmp_path,
                                                       reference):
        """With the result tier disabled, warm repeats fall back to the
        decoded-frame tier: retrievals are planned and served from RAM."""
        _, single, _ = reference
        store = _build(tmp_path / "w",
                       CacheConfig(result_capacity_bytes=0.0))
        cold = store.execute("A", dataset="jackson", accuracy=0.8,
                             t0=0.0, t1=SPAN)
        warm = store.execute("A", dataset="jackson", accuracy=0.8,
                             t0=0.0, t1=SPAN)
        for result in (cold, warm):
            assert result.positives_per_stage == single.positives_per_stage
        assert warm.compute_seconds < cold.compute_seconds
        stats = store.cache_stats()
        assert stats.frames.hits > 0
        assert stats.results.hits == 0  # nothing ever committed
        assert stats.frames.seconds_saved > 0


class TestSingleFlight:
    def test_concurrent_duplicates_deduplicate_in_flight(self, tmp_path,
                                                         reference):
        _, _, many = reference
        store = _build(tmp_path / "w", CacheConfig())
        specs = [dict(query="A", dataset="jackson", accuracy=0.8,
                      t0=0.0, t1=SPAN) for _ in range(8)]
        outcomes = store.execute_many(specs, **_pools())
        for got, want in zip(outcomes, many):
            _assert_same_outputs(got, want)
        stats = store.cache_stats()
        assert stats.single_flight_hits > 0
        # Followers ride the leader's entry: the contended makespan
        # collapses towards a single query's serial time.
        makespan = max(o.session.finished_at for o in outcomes)
        reference_makespan = max(o.session.finished_at for o in many)
        assert makespan < reference_makespan

    def test_follower_never_finishes_before_its_leader(self, tmp_path):
        store = _build(tmp_path / "w", CacheConfig())
        executor = store.executor(**_pools())
        lead = executor.admit(QUERY_A, "jackson", 0.8, 0.0, SPAN)
        follow = executor.admit(QUERY_A, "jackson", 0.8, 0.0, SPAN)
        executor.run()
        assert follow.finished_at >= lead.finished_at

    def test_disabled_single_flight_runs_everything(self, tmp_path):
        store = _build(tmp_path / "w", CacheConfig(single_flight=False))
        specs = [dict(query="A", dataset="jackson", accuracy=0.8,
                      t0=0.0, t1=SPAN) for _ in range(4)]
        store.execute_many(specs, **_pools())
        assert store.cache_stats().single_flight_hits == 0


class TestInvalidation:
    def test_age_invalidates_no_stale_results(self, tmp_path):
        """After erosion deletes footage, a warm cache must not resurrect
        results for segments that are gone."""
        store = _build(tmp_path / "w", CacheConfig(), lifespan_days=2)
        store.execute("A", dataset="jackson", accuracy=0.8, t0=0.0, t1=SPAN)
        assert store.cache.frames.occupancy_bytes > 0
        deleted = store.age("jackson", now_seconds=10 * DAY)
        assert deleted > 0
        # every cached artifact of the eroded segments is gone
        assert len(store.cache.frames) == 0
        assert len(store.cache.results.committed) == 0
        assert store.cache_stats().frames.invalidations > 0

    def test_reingest_invalidates_and_matches_fresh_store(self, tmp_path,
                                                          reference):
        _, single, _ = reference
        store = _build(tmp_path / "w", CacheConfig())
        store.execute("A", dataset="jackson", accuracy=0.8, t0=0.0, t1=SPAN)
        # Re-ingest the same segments: cached frames/results become stale.
        store.ingest("jackson", n_segments=N_SEGMENTS)
        assert len(store.cache.frames) == 0
        result = store.execute("A", dataset="jackson", accuracy=0.8,
                               t0=0.0, t1=SPAN)
        assert result.positives_per_stage == single.positives_per_stage


class TestDatasetKeying:
    def test_mismatched_dataset_query_cannot_poison_the_memo(self, tmp_path):
        """Nothing stops a caller from querying a stream under the wrong
        dataset; the result keys carry the dataset, so the two pairings
        can never serve each other's outputs."""

        def run(store, dataset):
            executor = store.executor()
            executor.admit(QUERY_A, dataset, 0.8, 0.0, SPAN, stream="cam01")
            return executor.run()[0].result

        store = _build(tmp_path / "w", CacheConfig())
        store.ingest("jackson", n_segments=N_SEGMENTS, stream="cam01")
        jackson_cold = run(store, "jackson")
        mismatched = run(store, "miami")  # warm memo must not leak into this
        jackson_warm = run(store, "jackson")
        assert (jackson_warm.positives_per_stage
                == jackson_cold.positives_per_stage)

        uncached = _build(tmp_path / "w2")
        uncached.ingest("jackson", n_segments=N_SEGMENTS, stream="cam01")
        assert (run(uncached, "miami").positives_per_stage
                == mismatched.positives_per_stage)


class TestTiering:
    def test_hot_segments_promote_and_speed_up_raw_reads(self, tmp_path):
        store = _build(
            tmp_path / "w",
            CacheConfig(frame_capacity_bytes=0.0,  # force every read to disk
                        result_capacity_bytes=0.0,
                        tiering=TierConfig(promote_accesses=2)),
        )
        cold = store.execute("A", dataset="jackson", accuracy=0.8,
                             t0=0.0, t1=SPAN)
        stats = store.cache_stats()
        assert stats.tiering.promotions > 0
        assert stats.tiering.migration_seconds > 0
        # Migration moves stored segments: the fast tier can never hold
        # more than what is physically on disk (decoded frames are 10-100x
        # larger and belong to the RAM tier, not here).
        assert (stats.tiering.fast_occupancy_bytes
                <= store.segments.total_bytes())
        assert stats.tiering.migrated_bytes <= store.segments.total_bytes()
        warm = store.execute("A", dataset="jackson", accuracy=0.8,
                             t0=0.0, t1=SPAN)
        # Promoted raw segments stream at fast-tier bandwidth; with the
        # frame cache disabled the speedup comes from tiering alone (the
        # cold run even paid the migration I/O on top of slow-tier reads).
        assert warm.positives_per_stage == cold.positives_per_stage
        assert warm.compute_seconds < cold.compute_seconds


class TestDecoderCache:
    def test_decoder_skips_charge_on_hit(self):
        from repro.cache import CachePlane
        from repro.clock import SimClock
        from repro.codec.encoder import Encoder
        from repro.video.coding import coding_space
        from repro.video.fidelity import Fidelity
        from repro.video.format import StorageFormat
        from repro.video.segment import Segment

        clock = SimClock()
        plane = CachePlane(CacheConfig())
        fmt = StorageFormat(fidelity=Fidelity.parse("best-200p-1-100%"),
                            coding=next(iter(coding_space(include_raw=False))))
        encoded = Encoder(clock=clock).encode(
            Segment("jackson", 0, 8.0), fmt, activity=0.5
        )
        dec = Decoder(clock=clock, cache=plane)
        first = dec.decode(encoded, fmt.fidelity)
        decode_spent = clock.spent("decode")
        assert decode_spent > 0
        second = dec.decode(encoded, fmt.fidelity)
        assert clock.spent("decode") == decode_spent  # no second charge
        assert clock.spent("cache") > 0
        assert second.n_frames == first.n_frames

    def test_stats_requires_cache_enabled(self, tmp_path):
        from repro.errors import ConfigurationError

        store = VStore(workdir=str(tmp_path / "w"),
                       library=default_library(names=LIB_NAMES))
        store.configure()
        with pytest.raises(ConfigurationError):
            store.cache_stats()
