"""Benchmark fixtures: shared configuration plus a results collector.

Every benchmark regenerates one of the paper's tables or figures.  Besides
the pytest-benchmark timing, each test renders its rows through the
``record`` fixture; at the end of the session everything is written to
``benchmarks/RESULTS.md`` so the paper-vs-measured comparison of
EXPERIMENTS.md can be refreshed from one run.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

import pytest

from repro.core.config import derive_configuration
from repro.operators.library import default_library

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "RESULTS.md")
BENCH_PATH = os.path.join(os.path.dirname(__file__), "BENCH.json")

#: Machine-readable perf telemetry of one benchmark session, written to
#: ``benchmarks/BENCH.json`` at session end so the perf trajectory is
#: comparable across PRs (CI uploads it as an artifact):
#: ``tests`` maps each benchmark test to its real wall-clock seconds;
#: ``metrics`` holds structured per-benchmark numbers (executor
#: events/sec, speedups, simulated makespans) recorded through the
#: ``bench_metrics`` fixture.  Like RESULTS.md, the committed copy must
#: come from a *full* benchmark run — a partial session (e.g. the CI
#: perf-smoke's ``-k smoke``) rewrites the file with only its own cells.
_BENCH: Dict[str, Dict] = {"schema": 1, "tests": {}, "metrics": {}}


@pytest.fixture(scope="session")
def library():
    return default_library(names=("Diff", "S-NN", "NN", "Motion", "License",
                                  "OCR"))


@pytest.fixture(scope="session")
def full_library():
    return default_library()


@pytest.fixture(scope="session")
def configuration(library):
    return derive_configuration(library)


class _Recorder:
    def __init__(self):
        self.sections: Dict[str, List[str]] = {}

    def __call__(self, section: str, text: str) -> None:
        self.sections.setdefault(section, []).append(text)

    def render(self) -> str:
        parts = ["# Benchmark results (regenerated)\n"]
        for section in sorted(self.sections):
            parts.append(f"\n## {section}\n")
            parts.extend(f"```\n{text}\n```\n"
                         for text in self.sections[section])
        return "".join(parts)


@pytest.fixture(scope="session")
def _recorder():
    recorder = _Recorder()
    yield recorder
    if recorder.sections:
        with open(RESULTS_PATH, "w") as f:
            f.write(recorder.render())


@pytest.fixture()
def record(_recorder):
    return _recorder


class _BenchMetrics:
    """Collector behind the ``bench_metrics`` fixture.

    ``bench_metrics("executor_scale/q256_s4", wall_seconds=..., ...)``
    lands under ``metrics`` in BENCH.json; keys are stable across PRs so
    trajectories can be diffed mechanically.
    """

    def __call__(self, name: str, **fields) -> None:
        _BENCH["metrics"][name] = fields


@pytest.fixture()
def bench_metrics():
    return _BenchMetrics()


def pytest_runtest_logreport(report):
    """Record each benchmark test's real wall-clock (call phase only)."""
    if report.when == "call" and "benchmarks/" in report.nodeid.replace(
            os.sep, "/"):
        _BENCH["tests"][report.nodeid] = round(report.duration, 4)


def pytest_sessionfinish(session):
    """Write BENCH.json whenever this session ran any benchmark."""
    if _BENCH["tests"] or _BENCH["metrics"]:
        with open(BENCH_PATH, "w") as f:
            json.dump(_BENCH, f, indent=1, sort_keys=True)
            f.write("\n")
