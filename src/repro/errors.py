"""Exception hierarchy for the VStore reproduction.

All library errors derive from :class:`VStoreError` so callers can catch a
single base class at the API boundary.
"""


class VStoreError(Exception):
    """Base class for every error raised by this library."""


class KnobError(VStoreError):
    """An unknown knob name or an illegal knob value was supplied."""


class FidelityError(VStoreError):
    """A fidelity operation violated the richer-than partial order."""


class CodecError(VStoreError):
    """Encoding or decoding was attempted with inconsistent parameters."""


class StorageError(VStoreError):
    """The storage backend failed (missing key, corrupt record, ...)."""


class ShardFailedError(StorageError):
    """An I/O operation targeted a shard that is currently failed."""


class ReplicaUnavailableError(StorageError):
    """Every replica of a segment is gone: the data is lost."""


class BudgetError(VStoreError):
    """A resource budget cannot be met by any feasible configuration."""


class ConfigurationError(VStoreError):
    """Backward derivation failed to produce a valid configuration."""


class ProfilingError(VStoreError):
    """An operator or coding profile could not be measured."""


class QueryError(VStoreError):
    """A query referenced unknown operators, accuracies, or time ranges."""


class ErosionError(VStoreError):
    """The erosion planner was given an infeasible storage budget."""
