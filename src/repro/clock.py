"""Deterministic simulated clock used for all resource accounting.

The paper reports wall-clock measurements on a specific testbed.  To make
every experiment reproducible and hardware independent, this reproduction
charges compute, coding and disk costs to a :class:`SimClock` instead of
measuring the host machine.  Speeds in "x realtime" are then ratios of video
time to simulated time, exactly as defined in Section 2.2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class SimClock:
    """A monotonically advancing simulated clock with per-category totals.

    ``charge`` advances the clock and attributes the cost to a category so
    experiments can break down where simulated time went (decode vs consume
    vs disk), mirroring the paper's per-component cost analysis.
    """

    now: float = 0.0
    by_category: Dict[str, float] = field(default_factory=dict)

    #: Relative tolerance for backwards ``advance_to`` targets.  Event
    #: times are sums of float durations, so two paths to the same
    #: instant may disagree by a few ulps; anything beyond this is an
    #: event-ordering bug, not rounding.
    BACKWARDS_TOLERANCE = 1e-9

    def charge(self, seconds: float, category: str = "other") -> float:
        """Advance the clock by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        self.now += seconds
        self.by_category[category] = self.by_category.get(category, 0.0) + seconds
        return self.now

    def advance_to(self, t: float, category: str = "other") -> float:
        """Advance the clock to absolute simulated time ``t``.

        Charges the difference to ``category``.  A ``t`` at (or a float
        epsilon before) the current time is a no-op — concurrent
        completions may land on the same instant, and absolute event
        times are sums of float durations that can disagree by ulps.  A
        backwards jump beyond that tolerance raises ``ValueError``:
        silently ignoring it would mask event-ordering bugs upstream.
        """
        delta = t - self.now
        if delta > 0:
            self.charge(delta, category)
        elif delta < -self.BACKWARDS_TOLERANCE * max(1.0, abs(self.now)):
            raise ValueError(
                f"clock cannot run backwards: advance_to({t}) from "
                f"{self.now}"
            )
        return self.now

    def spent(self, category: str) -> float:
        """Total simulated seconds charged to ``category`` so far."""
        return self.by_category.get(category, 0.0)

    def reset(self) -> None:
        """Zero the clock and all per-category totals."""
        self.now = 0.0
        self.by_category.clear()


@dataclass
class Stopwatch:
    """Measures an interval of simulated time on a :class:`SimClock`."""

    clock: SimClock
    start: float = 0.0

    def __post_init__(self) -> None:
        self.start = self.clock.now

    def elapsed(self) -> float:
        """Simulated seconds since this stopwatch was created."""
        return self.clock.now - self.start
