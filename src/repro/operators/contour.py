"""Contour: contour-boundary detector (OpenCV findContours-style).

Contour extraction binarizes edges and traces boundaries.  Edges are the
first casualty of compression (ringing and blocking erase them), so this
operator has the strongest quality sensitivity in the library while being
nearly free computationally.
"""

from __future__ import annotations

from repro.operators.detector import DetectorOperator


class ContourOperator(DetectorOperator):
    """Detector for contour boundaries [OpenCV]."""

    name = "Contour"
    platform = "cpu"

    # Cost: edge filter + border following, linear in pixels.
    cost_base = 2.5e-5
    cost_per_mp = 1.1e-3
    cost_gamma = 1.0

    target_kinds = ("car", "person")
    feature_scale = 1.0
    theta = 2.75
    width = 0.5
    quality_alpha = 2.8  # edges vanish under compression artifacts
    fp_base = 0.08
