"""Storage formats SF<f, c> and consumption formats CF<f> (Section 3.1).

A *consumption format* is the fidelity of the raw frame sequence supplied to
an operator.  A *storage format* pairs a fidelity with a coding option and
describes one on-disk version of an ingested stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.video.coding import Coding, RAW
from repro.video.fidelity import Fidelity


@dataclass(frozen=True)
class ConsumptionFormat:
    """CF<f> — the fidelity of frames handed to a consumer."""

    fidelity: Fidelity

    @property
    def label(self) -> str:
        return self.fidelity.label

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"CF<{self.label}>"


@dataclass(frozen=True)
class StorageFormat:
    """SF<f, c> — one stored video version (fidelity plus coding)."""

    fidelity: Fidelity
    coding: Coding

    @property
    def is_raw(self) -> bool:
        """True when this version stores raw frames (coding bypass)."""
        return self.coding.raw

    @property
    def label(self) -> str:
        return f"{self.fidelity.label} {self.coding.label}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"SF<{self.label}>"

    def can_supply(self, cf: ConsumptionFormat) -> bool:
        """Requirement R1: this SF can feed ``cf`` iff its fidelity is
        richer than or equal to the consumption fidelity."""
        return self.fidelity.richer_equal(cf.fidelity)

    def with_coding(self, coding: Coding) -> "StorageFormat":
        """A copy of this format using a different coding option."""
        return StorageFormat(fidelity=self.fidelity, coding=coding)


def raw_format(fidelity: Fidelity) -> StorageFormat:
    """A storage format keeping ``fidelity`` as raw frames on disk."""
    return StorageFormat(fidelity=fidelity, coding=RAW)
