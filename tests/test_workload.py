"""Open-loop workload generation: determinism, rates, merging.

Arrival generators are pure functions of (parameters, seed): the
Hypothesis properties here pin seed determinism, statistical rate
conservation and the trace round-trip — the contract every open-loop
benchmark and its BENCH.json cells rest on.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.query.workload import (
    Arrival,
    ArrivalSpec,
    QueryMixEntry,
    TenantSpec,
    build_workload,
    bursty_arrivals,
    diurnal_arrivals,
    generate_arrivals,
    poisson_arrivals,
    trace_arrivals,
    workload_specs,
)

MIX = (QueryMixEntry(query="B", dataset="jackson"),)


# ---------------------------------------------------------------------------
# Generator properties
# ---------------------------------------------------------------------------


ARRIVAL_SPECS = st.sampled_from([
    ArrivalSpec(kind="poisson", rate=2.0),
    ArrivalSpec(kind="bursty", rate=1.0, rate_burst=5.0,
                dwell_calm=5.0, dwell_burst=2.0),
    ArrivalSpec(kind="diurnal", rate=2.0, period=50.0, amplitude=0.5),
])


@settings(max_examples=30, deadline=None)
@given(spec=ARRIVAL_SPECS, seed=st.integers(0, 2**32),
       horizon=st.floats(1.0, 200.0))
def test_generators_are_seed_deterministic(spec, seed, horizon):
    a = generate_arrivals(spec, horizon, seed)
    b = generate_arrivals(spec, horizon, seed)
    assert a == b  # bit-equal floats, not approx
    assert all(0.0 <= t < horizon for t in a)
    assert a == sorted(a)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**32))
def test_different_seeds_differ(seed):
    a = poisson_arrivals(2.0, 100.0, seed)
    b = poisson_arrivals(2.0, 100.0, (seed, "other"))
    assert a != b


@settings(max_examples=15, deadline=None)
@given(rate=st.floats(0.5, 8.0), seed=st.integers(0, 2**32))
def test_poisson_rate_conservation(rate, seed):
    """Over a long horizon the count concentrates around rate*horizon;
    a +-50% band at horizon=400 is ~10 sigma even at the lowest rate."""
    horizon = 400.0
    n = len(poisson_arrivals(rate, horizon, seed))
    assert 0.5 * rate * horizon < n < 1.5 * rate * horizon


@settings(max_examples=15, deadline=None)
@given(rate=st.floats(0.5, 4.0), seed=st.integers(0, 2**32))
def test_diurnal_rate_conservation(rate, seed):
    """The sinusoid averages out over whole periods: mean rate holds."""
    horizon = 400.0  # 8 whole periods of 50
    n = len(diurnal_arrivals(rate, horizon, seed, period=50.0,
                             amplitude=0.8))
    assert 0.5 * rate * horizon < n < 1.5 * rate * horizon


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**32))
def test_bursty_rate_between_phase_rates(seed):
    """An MMPP's long-run rate sits between the calm and burst rates."""
    times = bursty_arrivals(1.0, 8.0, 400.0, seed,
                            dwell_calm=10.0, dwell_burst=5.0)
    mean_rate = len(times) / 400.0
    assert 1.0 * 0.5 < mean_rate < 8.0 * 1.1


@settings(max_examples=30, deadline=None)
@given(times=st.lists(st.floats(0.0, 1000.0), max_size=50))
def test_trace_round_trip(times):
    """A sorted trace replays unchanged; any trace sorts stably."""
    normalized = trace_arrivals(times)
    assert normalized == sorted(times)
    assert trace_arrivals(normalized) == normalized


def test_trace_rejects_negative():
    with pytest.raises(QueryError):
        trace_arrivals([1.0, -0.5])


def test_generator_validation():
    with pytest.raises(QueryError):
        poisson_arrivals(0.0, 10.0, 1)
    with pytest.raises(QueryError):
        poisson_arrivals(1.0, 0.0, 1)
    with pytest.raises(QueryError):
        bursty_arrivals(1.0, -2.0, 10.0, 1)
    with pytest.raises(QueryError):
        diurnal_arrivals(1.0, 10.0, 1, amplitude=1.5)
    with pytest.raises(QueryError):
        ArrivalSpec(kind="laplace")


# ---------------------------------------------------------------------------
# Tenants and merging
# ---------------------------------------------------------------------------


def _tenant(name, rate=1.0, slo=None, weight=1.0):
    return TenantSpec(name=name, arrivals=ArrivalSpec(rate=rate), mix=MIX,
                      slo_seconds=slo, weight=weight)


def test_build_workload_is_deterministic_and_sorted():
    tenants = [_tenant("a", 2.0, slo=10.0), _tenant("b", 1.0)]
    w1 = build_workload(tenants, 50.0, seed=3)
    w2 = build_workload(tenants, 50.0, seed=3)
    assert w1 == w2
    assert [a.t for a in w1] == sorted(a.t for a in w1)
    assert {a.tenant for a in w1} == {"a", "b"}
    # SLO tenants carry deadline = arrival + slo; others carry None.
    for a in w1:
        if a.tenant == "a":
            assert a.deadline == a.t + 10.0
        else:
            assert a.deadline is None


def test_adding_a_tenant_does_not_perturb_existing_streams():
    """Per-tenant seeding: tenant a's arrivals are identical whether or
    not tenant b exists — fleet composition is compositional."""
    alone = [a for a in build_workload([_tenant("a")], 80.0, 5)]
    joined = [a for a in build_workload([_tenant("a"), _tenant("b")], 80.0, 5)
              if a.tenant == "a"]
    assert [(a.t, a.entry) for a in alone] == [(a.t, a.entry) for a in joined]


def test_mix_weights_shift_the_choice_distribution():
    heavy = QueryMixEntry(query="B", dataset="jackson", t1=8.0, weight=9.0)
    light = QueryMixEntry(query="B", dataset="jackson", t1=32.0, weight=1.0)
    spec = TenantSpec(name="t", arrivals=ArrivalSpec(rate=4.0),
                      mix=(heavy, light))
    picks = [a.entry for a in build_workload([spec], 100.0, seed=11)]
    n_heavy = sum(1 for e in picks if e is heavy)
    assert n_heavy > 0.7 * len(picks)  # 90% expected; wide margin


def test_build_workload_validation():
    with pytest.raises(QueryError):
        build_workload([], 10.0, 0)
    with pytest.raises(QueryError):
        build_workload([_tenant("x"), _tenant("x")], 10.0, 0)
    with pytest.raises(QueryError):
        TenantSpec(name="", arrivals=ArrivalSpec(), mix=MIX)
    with pytest.raises(QueryError):
        TenantSpec(name="t", mix=())
    with pytest.raises(QueryError):
        TenantSpec(name="t", mix=MIX, slo_seconds=-1.0)
    with pytest.raises(QueryError):
        TenantSpec(name="t", mix=MIX, weight=0.0)
    with pytest.raises(QueryError):
        TenantSpec(name="t", mix=MIX, quota=0)
    with pytest.raises(QueryError):
        QueryMixEntry(query="B", dataset="jackson", weight=-1.0)


def test_workload_specs_lowering():
    arrivals = [
        Arrival(t=1.5, tenant="gold", deadline=4.5,
                entry=QueryMixEntry(query="B", dataset="jackson",
                                    accuracy=0.8, t0=0.0, t1=8.0)),
        Arrival(t=2.0, tenant="bronze", deadline=None,
                entry=QueryMixEntry(query="A", dataset="dashcam")),
    ]
    specs = workload_specs(arrivals)
    assert specs[0] == {"query": "B", "dataset": "jackson", "accuracy": 0.8,
                       "t0": 0.0, "t1": 8.0, "arrival": 1.5,
                       "tenant": "gold", "deadline": 4.5}
    assert "deadline" not in specs[1]
    assert specs[1]["tenant"] == "bronze"
