"""Operator cascades: the two benchmark queries of Figure 2.

Query A (car detection): Diff filters out similar frames, the specialized
shallow NN rapidly detects most cars, and the full NN analyzes the frames
the shallow net is unsure about.

Query B (license-plate recognition): Motion filters frames with little
motion, License spots plate regions, OCR recognizes the characters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import QueryError


@dataclass(frozen=True)
class QueryCascade:
    """A named cascade of operators, executed in order."""

    name: str
    operators: Tuple[str, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.operators:
            raise QueryError(f"cascade {self.name!r} has no operators")

    def __len__(self) -> int:
        return len(self.operators)

    def __iter__(self):
        return iter(self.operators)

    @property
    def label(self) -> str:
        return f"{self.name} ({' + '.join(self.operators)})"


QUERY_A = QueryCascade(
    name="A",
    operators=("Diff", "S-NN", "NN"),
    description="Car detector: Diff filters similar frames; S-NN rapidly "
                "detects most cars; NN analyzes remaining frames.",
)

QUERY_B = QueryCascade(
    name="B",
    operators=("Motion", "License", "OCR"),
    description="Vehicle license-plate recognition: Motion filters frames "
                "with little motion; License spots plate regions; OCR "
                "recognizes characters.",
)


def cascade_for(name: str) -> QueryCascade:
    """Look up one of the benchmark cascades by name ("A" or "B")."""
    cascades = {"A": QUERY_A, "B": QUERY_B}
    try:
        return cascades[name]
    except KeyError:
        raise QueryError(f"unknown query {name!r}; known: A, B") from None


def stages_with_coverage(selectivities: List[float]) -> List[float]:
    """Fraction of the queried timespan each stage must scan: stage i
    covers the product of the positive fractions of stages before it."""
    coverage = []
    acc = 1.0
    for s in selectivities:
        coverage.append(acc)
        acc *= max(0.0, min(1.0, s))
    return coverage
