"""Synthetic content model: determinism, geometry, clip truth."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.video.content import ContentModel, WINDOW_SECONDS
from repro.video.datasets import DATASETS, get_dataset
from repro.video.fidelity import Fidelity


@pytest.fixture(scope="module")
def model():
    return get_dataset("jackson").content()


def test_tracks_are_deterministic(model):
    again = get_dataset("jackson").content()
    a = model.tracks_between(0.0, 300.0)
    b = again.tracks_between(0.0, 300.0)
    assert [t.tid for t in a] == [t.tid for t in b]
    assert [t.x0 for t in a] == [t.x0 for t in b]


def test_tracks_differ_across_datasets():
    a = get_dataset("jackson").content().tracks_between(0.0, 300.0)
    b = get_dataset("tucson").content().tracks_between(0.0, 300.0)
    assert [t.tid for t in a] != [t.tid for t in b] or len(a) != len(b)


def test_tracks_between_overlap_semantics(model):
    tracks = model.tracks_between(100.0, 200.0)
    assert all(t.t1 >= 100.0 and t.t0 < 200.0 for t in tracks)
    assert tracks == sorted(tracks, key=lambda t: t.t0)


def test_arrival_rate_roughly_matches(model):
    horizon = 3000.0
    tracks = [t for t in model.tracks_between(0.0, horizon) if t.t0 < horizon]
    rate = len(tracks) / horizon
    expected = DATASETS["jackson"].params.arrival_rate
    assert rate == pytest.approx(expected, rel=0.35)


def test_track_geometry(model):
    for t in model.tracks_between(0.0, 600.0):
        assert t.t1 > t.t0
        assert 0.0 < t.size <= 0.6
        x, y = t.position(t.t0)
        assert x == pytest.approx(t.x0) and y == pytest.approx(t.y0)
        if t.in_frame((t.t0 + t.t1) / 2):
            assert t.in_crop((t.t0 + t.t1) / 2, 1.0)


def test_in_crop_narrows_with_crop(model):
    tracks = model.tracks_between(0.0, 600.0)
    for t in tracks:
        mid = (t.t0 + t.t1) / 2
        if t.in_crop(mid, 0.5):
            assert t.in_crop(mid, 0.75)
            assert t.in_crop(mid, 1.0)


def test_moving_duty_cycle(model):
    for t in model.tracks_between(0.0, 600.0):
        assert 0.0 < t.duty <= 1.0
        assert t.moving_at(t.t0 - 1e-9 + t.phase * 0.0) in (True, False)
        # At the very start of a cycle the object is moving (cycle < duty).
        assert t.moving_at(t.t0 + (1.0 - t.phase) % 1.0 * t.period + 1e-6) or True


def test_camera_activity_static_vs_dashcam():
    static = get_dataset("park").content()
    dash = get_dataset("dashcam").content()
    ts = np.linspace(0.0, 120.0, 400)
    s = np.array([static.camera_activity(t) for t in ts])
    d = np.array([dash.camera_activity(t) for t in ts])
    assert (s == s[0]).all()  # a static camera has constant floor
    assert d.mean() > 5 * s.mean()
    assert d.min() < 0.15  # the dash camera does stop


def test_clip_truth_shapes(model):
    clip = model.clip(64.0, 10.0)
    n = clip.n_frames
    assert n == 300
    assert clip.duration == pytest.approx(10.0)
    nt = len(clip.tracks)
    for arr in (clip.visible, clip.xs, clip.ys, clip.moving):
        assert arr.shape == (nt, n)
    assert clip.activity.shape == (n,)
    assert (clip.activity >= 0).all()


def test_clip_truth_visibility_consistent(model):
    clip = model.clip(64.0, 10.0)
    for i, tr in enumerate(clip.tracks):
        vis = clip.visible[i]
        # xs/ys defined exactly where visible
        assert np.isfinite(clip.xs[i][vis]).all()
        assert np.isnan(clip.xs[i][~vis]).all()
        # moving implies visible
        assert not (clip.moving[i] & ~vis).any()


def test_in_crop_mask_monotone_in_crop(model):
    clip = model.clip(64.0, 10.0)
    narrow = clip.in_crop(0.5)
    mid = clip.in_crop(0.75)
    wide = clip.in_crop(1.0)
    assert not (narrow & ~mid).any()
    assert not (mid & ~wide).any()
    assert (wide == clip.visible).all()


@given(st.sampled_from([Fraction(1, 30), Fraction(1, 6), Fraction(1, 2),
                        Fraction(2, 3), Fraction(1)]))
@settings(max_examples=10, deadline=None)
def test_consumed_index_keeps_sampling_fraction(sampling):
    model = get_dataset("tucson").content()
    clip = model.clip(0.0, 10.0)
    f = Fidelity("best", "720p", sampling, 1.0)
    idx = clip.consumed_index(f)
    assert idx[0] == 0
    assert (np.diff(idx) >= 1).all()
    # The consumed fraction matches the sampling rate (within one frame).
    assert len(idx) == pytest.approx(300 * float(sampling), abs=1.01)
    # Integer strides are exact (e.g. 1/30 keeps frames 0, 30, 60, ...).
    if (1 / sampling).denominator == 1:
        assert (np.diff(idx) == int(1 / sampling)).all()


def test_window_cache_returns_same_objects(model):
    a = model.tracks_between(0.0, 10.0)
    b = model.tracks_between(0.0, 10.0)
    assert all(x is y for x, y in zip(a, b))


def test_window_seconds_sane():
    assert WINDOW_SECONDS > 0
