"""Figure 4: fidelity knobs have high, complex impacts on component costs
and operator accuracy — one knob varied per panel, all others fixed.

(a) crop factor / Motion, (b) image quality / License,
(c) frame sampling / S-NN, (d) frame sampling / NN.
"""

from fractions import Fraction

import pytest

from repro.codec.model import DEFAULT_CODEC
from repro.profiler.profiler import OperatorProfiler
from repro.video.coding import Coding
from repro.video.fidelity import CROP_FACTORS, Fidelity, QUALITIES, SAMPLING_RATES

CODING = Coding("med", 250)


def _costs(fid):
    """(ingestion, storage, retrieval, consumption-reciprocal) axes."""
    ingest = DEFAULT_CODEC.encode_seconds_per_video_second(fid, CODING)
    storage = DEFAULT_CODEC.encoded_bytes_per_second(fid, CODING, 0.4)
    retrieval = 1.0 / DEFAULT_CODEC.decode_speed(fid, CODING)
    return ingest, storage, retrieval


def _sweep(profiler, operator, fidelities):
    rows = []
    for fid in fidelities:
        profile = profiler.profile(operator, fid)
        ingest, storage, retrieval = _costs(fid)
        rows.append((fid.label, profile.accuracy, ingest, storage, retrieval,
                     1.0 / profile.consumption_speed))
    return rows


def _render(rows):
    lines = [f"{'fidelity':>24} {'F1':>6} {'ingest':>9} {'storage':>10} "
             f"{'retrieval':>10} {'consume':>10}"]
    for label, acc, ing, sto, ret, con in rows:
        lines.append(f"{label:>24} {acc:>6.2f} {ing:>9.2e} {sto:>10.2e} "
                     f"{ret:>10.2e} {con:>10.2e}")
    return "\n".join(lines)


@pytest.fixture(scope="module")
def profiler_a(full_library):
    return OperatorProfiler(full_library, "dashcam")


@pytest.fixture(scope="module")
def profiler_b(full_library):
    return OperatorProfiler(full_library, "jackson")


def test_fig4a_crop_vs_motion(benchmark, record, profiler_a):
    fidelities = [Fidelity("bad", "180p", Fraction(1, 6), c)
                  for c in CROP_FACTORS]
    rows = benchmark(_sweep, profiler_a, "Motion", fidelities)
    record("Figure 4a — crop factor (Motion)", _render(rows))
    accs = [r[1] for r in rows]
    costs = [r[5] for r in rows]
    assert accs == sorted(accs)  # richer crop, higher accuracy
    assert costs == sorted(costs)  # and higher consumption cost


def test_fig4b_quality_vs_license(benchmark, record, profiler_a):
    fidelities = [Fidelity(q, "540p", Fraction(1, 6), 1.0)
                  for q in QUALITIES]
    rows = benchmark(_sweep, profiler_a, "License", fidelities)
    record("Figure 4b — image quality (License)", _render(rows))
    accs = [r[1] for r in rows]
    storages = [r[3] for r in rows]
    consumes = [r[5] for r in rows]
    assert accs == sorted(accs)
    assert storages == sorted(storages)
    # O2: image quality does not impact consumption cost.
    assert max(consumes) == pytest.approx(min(consumes))
    # One quality step moves storage by roughly 5x (Section 2.4).
    assert storages[-1] / storages[-2] > 3.5


def test_fig4c_sampling_vs_snn(benchmark, record, profiler_b):
    fidelities = [Fidelity("best", "200p", s, 1.0) for s in SAMPLING_RATES]
    rows = benchmark(_sweep, profiler_b, "S-NN", fidelities)
    record("Figure 4c — frame sampling (S-NN)", _render(rows))
    accs = [r[1] for r in rows]
    assert accs == sorted(accs)
    assert accs[0] < accs[-1] - 0.1  # sampling matters


def test_fig4d_sampling_vs_nn(benchmark, record, profiler_b):
    fidelities = [Fidelity("good", "400p", s, 1.0) for s in SAMPLING_RATES]
    rows = benchmark(_sweep, profiler_b, "NN", fidelities)
    record("Figure 4d — frame sampling (NN)", _render(rows))
    accs = [r[1] for r in rows]
    assert accs == sorted(accs)
    # The same knob impacts the two operators differently (Section 2.4):
    # the sweep shapes are recorded for comparison with 4c.


def test_fig4_cost_savings_at_minor_accuracy_loss(benchmark, record, profiler_a):
    """Headline of Section 2.4: ~50% resource savings for ~5% accuracy."""
    rich = Fidelity("best", "540p", Fraction(1, 6), 1.0)
    poorer = Fidelity("best", "400p", Fraction(1, 6), 1.0)
    a_rich = benchmark(profiler_a.profile, "License", rich)
    a_poor = profiler_a.profile("License", poorer)
    assert a_rich.accuracy - a_poor.accuracy < 0.12
    assert (1 / a_poor.consumption_speed) < 0.7 * (1 / a_rich.consumption_speed)
