"""Profiling: measuring operator and coding behaviour on sample clips.

VStore periodically profiles every operator and the codec on short sample
clips (10 seconds in the paper) and memoizes results within a configuration
round.  Profiling cost is the dominant configuration overhead (Sections 4.2
and 4.3, Figure 14), so both profilers count runs, memo hits and simulated
profiling time.
"""

from repro.profiler.coding_profiler import CodingProfile, CodingProfiler
from repro.profiler.profiler import OperatorProfile, OperatorProfiler

__all__ = [
    "CodingProfile",
    "CodingProfiler",
    "OperatorProfile",
    "OperatorProfiler",
]
