"""Color: detector for objects of a specific color (BlazeIt-style filter).

Color thresholds pixel statistics inside candidate regions.  It is cheap
and works at small resolutions but leans on color fidelity, which
compression destroys early (chroma is subsampled and quantized first), so
its quality sensitivity is high.
"""

from __future__ import annotations

from repro.operators.detector import DetectorOperator
from repro.video.content import VEHICLE_COLORS, Track


class ColorOperator(DetectorOperator):
    """Detector for contents of a specific color [BlazeIt]."""

    name = "Color"
    platform = "cpu"

    # Cost: per-pixel color space math.
    cost_base = 9e-6
    cost_per_mp = 2.2e-4
    cost_gamma = 1.0

    #: The color this instance searches for.
    target_color: str = "red"

    target_kinds = ("car",)
    feature_scale = 0.8
    theta = 2.2  # a small blob of pixels suffices
    width = 0.5
    quality_alpha = 2.0  # chroma dies first under compression
    fp_base = 0.04

    def __init__(self, target_color: str = "red"):
        if target_color not in VEHICLE_COLORS:
            raise ValueError(
                f"unknown color {target_color!r}; choose from {VEHICLE_COLORS}"
            )
        self.target_color = target_color

    def is_target(self, track: Track) -> bool:
        return super().is_target(track) and track.color == self.target_color
