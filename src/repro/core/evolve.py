"""Adapting to changes in operators and hardware (Section 7).

VStore works with any queries composed from its pre-defined library.  When
the library *changes*, the paper prescribes incremental adaptation rather
than wholesale reconfiguration:

* **adding an operator (or accuracy level)**: profile the newcomer and
  derive its consumption formats.  For *forthcoming* videos the storage
  formats are re-derived; for *existing* videos — transcoding old footage
  is too expensive — each new CF subscribes to the cheapest existing SF
  with satisfiable fidelity (R1 holds, so accuracy is met; retrieval may be
  slower than optimal until that footage ages out).
* **hardware changes** (e.g. a new GPU): all operators are re-profiled,
  which this module models by rebuilding the configuration with fresh
  profilers under the new cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.clock import SimClock
from repro.core.coalesce import SFPlan
from repro.core.config import (
    Configuration,
    DEFAULT_PROFILE_DATASETS,
    derive_configuration,
)
from repro.core.consumption import ConsumptionDecision, ConsumptionPlanner
from repro.errors import ConfigurationError
from repro.operators.library import Consumer, OperatorLibrary
from repro.profiler.profiler import OperatorProfiler
from repro.retrieval.speed import retrieval_speed


@dataclass(frozen=True)
class LegacySubscription:
    """A new consumer bound to an *existing* storage format.

    ``optimal`` is False when the legacy format satisfies fidelity (R1) but
    cannot match the consumer's consumption speed (R2) — the paper's
    "operators run with designated accuracies, albeit slower than optimal".
    """

    consumer: Consumer
    decision: ConsumptionDecision
    storage: SFPlan
    effective_speed: float
    optimal: bool


@dataclass
class EvolvedConfiguration:
    """Outcome of adding operators to a configured store."""

    #: Configuration applied to forthcoming videos (SFs re-derived).
    forthcoming: Configuration
    #: Subscriptions of the *new* consumers on already-stored videos.
    legacy: List[LegacySubscription]


def subscribe_to_existing(
    decision: ConsumptionDecision, formats: Sequence[SFPlan]
) -> LegacySubscription:
    """Bind a new consumer to the cheapest existing SF with satisfiable
    fidelity (Section 7's rule for footage already on disk)."""
    candidates = [
        sf for sf in formats if sf.fidelity.richer_equal(decision.fidelity)
    ]
    if not candidates:
        raise ConfigurationError(
            f"no existing storage format can supply {decision.fidelity.label}"
            " — the golden format should always qualify"
        )

    def cost_key(sf: SFPlan) -> Tuple[float, float]:
        # Cheapest to retrieve from, then fewest pixels (cheapest to hold).
        speed = retrieval_speed(sf.fmt, decision.fidelity.sampling)
        return (-speed, sf.fidelity.pixels)

    best = min(candidates, key=cost_key)
    speed = retrieval_speed(best.fmt, decision.fidelity.sampling)
    effective = min(speed, decision.consumption_speed)
    return LegacySubscription(
        consumer=decision.consumer,
        decision=decision,
        storage=best,
        effective_speed=effective,
        optimal=speed >= decision.consumption_speed,
    )


def add_operators(
    config: Configuration,
    library: OperatorLibrary,
    new_consumers: Sequence[Consumer],
    profile_datasets: Optional[Dict[str, str]] = None,
    clock: Optional[SimClock] = None,
) -> EvolvedConfiguration:
    """Admit new consumers into a configured store (Section 7).

    ``library`` must already contain the new operators.  Existing consumers
    keep their decisions; only the newcomers are profiled, which keeps the
    adaptation cost at O(new operators) rather than a full round.
    """
    clock = clock or SimClock()
    datasets = dict(profile_datasets or DEFAULT_PROFILE_DATASETS)
    existing = {c for c in config.consumers}
    added = [c for c in new_consumers if c not in existing]
    if not added:
        raise ConfigurationError("no new consumers to add")

    profilers: Dict[str, OperatorProfiler] = {}
    new_decisions: List[ConsumptionDecision] = []
    for consumer in added:
        dataset = datasets.get(consumer.operator)
        if dataset is None:
            raise ConfigurationError(
                f"no profiling dataset assigned for {consumer.operator!r}"
            )
        if dataset not in profilers:
            profilers[dataset] = OperatorProfiler(library, dataset,
                                                  clock=clock)
        planner = ConsumptionPlanner(profilers[dataset])
        new_decisions.append(planner.derive(consumer))

    # Existing videos: bind each new CF to the cheapest satisfiable SF.
    legacy = [
        subscribe_to_existing(d, config.plan.formats) for d in new_decisions
    ]

    # Forthcoming videos: re-derive the configuration over the full
    # consumer set, reusing the already-built profilers.
    forthcoming = derive_configuration(
        library,
        consumers=list(config.consumers) + added,
        profile_datasets=datasets,
        clock=clock,
        profilers=profilers,
    )
    return EvolvedConfiguration(forthcoming=forthcoming, legacy=legacy)


def reprofile_for_hardware(
    library: OperatorLibrary,
    config: Configuration,
    speedup: float,
    profile_datasets: Optional[Dict[str, str]] = None,
) -> Configuration:
    """Re-derive the configuration after a hardware change (Section 7).

    ``speedup`` scales every operator's consumption speed (e.g. 2.0 for a
    GPU twice as fast).  All operators are re-profiled; the caller applies
    the new SFs to forthcoming videos only, exactly as with operator
    additions.
    """
    if speedup <= 0:
        raise ConfigurationError(f"speedup must be positive: {speedup}")
    for op in library:
        # Faster hardware divides the per-frame costs.
        op.cost_base = op.cost_base / speedup
        op.cost_per_mp = op.cost_per_mp / speedup
    try:
        return derive_configuration(
            library,
            consumers=config.consumers,
            profile_datasets=profile_datasets,
        )
    finally:
        for op in library:
            op.cost_base = op.cost_base * speedup
            op.cost_per_mp = op.cost_per_mp * speedup
